// Package verify implements direct neighbor verification mechanisms — the
// black box the paper builds on (its references [8]–[10], [15]): methods
// that decide whether two devices are physically close enough to be
// neighbors, using distance bounding (RTT), received signal strength, or
// location claims.
//
// Two properties define the paper's premise and hold for every mechanism
// here:
//
//  1. They correctly verify neighbor relations between benign nodes (up to
//     configurable measurement noise).
//  2. They are transparently bypassed by node replication: a replica is
//     physically present at its planted location with valid secrets, so
//     every distance measurement about it is genuine and self-consistent.
//     Defending against that is the job of the paper's protocol, not of
//     direct verification.
package verify

import (
	"math"
	"math/rand"

	"snd/internal/deploy"
	"snd/internal/topology"
)

// Verifier is a direct neighbor verification mechanism. Verify reports
// whether the verifier device accepts the claimer device as a tentative
// neighbor under radio range r.
type Verifier interface {
	// Name identifies the mechanism in experiment output.
	Name() string
	// Verify runs one direct verification: can verifier confirm that
	// claimer is within range r?
	Verify(claimer, verifier *deploy.Device, r float64) bool
}

// ExactRange marks verifiers whose accept decision is exactly "claimer
// within distance r of verifier" — no measurement noise, no acceptance
// beyond the radius. For those mechanisms TentativeGraph assembles the
// topology from the layout's spatial index in O(n + k) instead of running
// the O(n²) pairwise sweep; noisy mechanisms (RTT, RSS) can accept pairs
// beyond r, so they must keep the exhaustive sweep.
type ExactRange interface {
	ExactRange() bool
}

// Oracle is the ideal mechanism: it accepts exactly the device pairs whose
// true distance is within range. The paper's analysis assumes this ("the
// direct neighbor verification mechanism can always correctly verify the
// neighbor relation between two benign nodes").
type Oracle struct{}

var _ Verifier = Oracle{}
var _ ExactRange = Oracle{}

// Name implements Verifier.
func (Oracle) Name() string { return "oracle" }

// Verify implements Verifier.
func (Oracle) Verify(claimer, verifier *deploy.Device, r float64) bool {
	return claimer.Pos.InRange(verifier.Pos, r)
}

// ExactRange implements ExactRange: the oracle's accept set is the range
// disk itself.
func (Oracle) ExactRange() bool { return true }

// RTT models round-trip-time distance bounding (packet leashes / wormhole
// detection, refs [9], [10]): the measured distance is the true distance
// plus Gaussian noise from clock granularity and processing jitter.
type RTT struct {
	// NoiseStd is the standard deviation of the distance estimate error in
	// meters.
	NoiseStd float64
	// Rng drives the noise; nil disables noise.
	Rng *rand.Rand
}

var _ Verifier = (*RTT)(nil)

// Name implements Verifier.
func (v *RTT) Name() string { return "rtt" }

// Verify implements Verifier.
func (v *RTT) Verify(claimer, verifier *deploy.Device, r float64) bool {
	d := claimer.Pos.Dist(verifier.Pos)
	if v.Rng != nil && v.NoiseStd > 0 {
		d += v.Rng.NormFloat64() * v.NoiseStd
	}
	return d <= r
}

// RSS models received-signal-strength ranging under the log-distance path
// loss model: P(d) = P0 − 10·η·log10(d/d0) + X, with shadowing noise X in
// dB. The verifier inverts the model to estimate distance.
type RSS struct {
	// PathLossExp is the path loss exponent η (≈ 2 free space, 3–4 indoor).
	PathLossExp float64
	// ShadowingDB is the standard deviation of the shadowing term in dB.
	ShadowingDB float64
	// Rng drives the shadowing; nil disables it.
	Rng *rand.Rand
}

var _ Verifier = (*RSS)(nil)

// Name implements Verifier.
func (v *RSS) Name() string { return "rss" }

// Verify implements Verifier.
func (v *RSS) Verify(claimer, verifier *deploy.Device, r float64) bool {
	const refDist = 1.0
	d := claimer.Pos.Dist(verifier.Pos)
	if d < refDist {
		return true
	}
	eta := v.PathLossExp
	if eta <= 0 {
		eta = 2
	}
	// Path loss relative to the reference distance, plus shadowing.
	loss := 10 * eta * math.Log10(d/refDist)
	if v.Rng != nil && v.ShadowingDB > 0 {
		loss += v.Rng.NormFloat64() * v.ShadowingDB
	}
	est := refDist * math.Pow(10, loss/(10*eta))
	return est <= r
}

// LocationClaim models location-based verification (refs [9], [10]): the
// claimer reports its position and the verifier checks it lies within
// range. Devices report their true current position — which is exactly why
// this defeats position *spoofing* but not replication: a replica's claimed
// position is its real, consistent position (Section 1: such schemes "do
// not work effectively when there are replicated nodes since the
// measurements generated regarding the same replica are always consistent").
type LocationClaim struct{}

var _ Verifier = LocationClaim{}
var _ ExactRange = LocationClaim{}

// Name implements Verifier.
func (LocationClaim) Name() string { return "location-claim" }

// Verify implements Verifier.
func (LocationClaim) Verify(claimer, verifier *deploy.Device, r float64) bool {
	return claimer.Pos.InRange(verifier.Pos, r)
}

// ExactRange implements ExactRange: truthful position reports accept
// exactly the in-range pairs.
func (LocationClaim) ExactRange() bool { return true }

// TentativeGraph runs direct verification between every ordered pair of
// alive devices and returns the tentative network topology (Definition 2)
// over logical node IDs. A relation (u, v) is added when some alive device
// claiming v passes u's verification — so replicas weave their compromised
// ID into the topology wherever they are planted, exactly the capability
// the paper's protocol must contain.
func TentativeGraph(l *deploy.Layout, v Verifier, r float64) *topology.Graph {
	g := topology.New()
	if e, ok := v.(ExactRange); ok && e.ExactRange() {
		// The accept set is exactly the range disk, so the spatial index
		// reports precisely the devices every verifier accepts — O(n + k)
		// instead of n² verifications, with an identical relation set.
		l.EnsureGrid(r)
		l.ForEachDevice(func(a *deploy.Device) {
			if !a.Alive {
				return
			}
			g.AddNode(a.Node)
			l.ForEachInRange(a.Handle, r, func(b *deploy.Device) {
				if b.Node != a.Node {
					g.AddRelation(a.Node, b.Node)
				}
			})
		})
		return g
	}
	var alive []*deploy.Device
	l.ForEachDevice(func(d *deploy.Device) {
		if d.Alive {
			alive = append(alive, d)
			g.AddNode(d.Node)
		}
	})
	for _, a := range alive {
		for _, b := range alive {
			if a.Handle == b.Handle || a.Node == b.Node {
				continue
			}
			// a verifies b: relation (a.Node -> b.Node).
			if v.Verify(b, a, r) {
				g.AddRelation(a.Node, b.Node)
			}
		}
	}
	return g
}

// ErrorRates measures a mechanism's benign-pair false reject and false
// accept rates over the alive non-replica devices of a layout, against the
// ground truth distance ≤ r. It returns (falseReject, falseAccept).
func ErrorRates(l *deploy.Layout, v Verifier, r float64) (falseReject, falseAccept float64) {
	var devs []*deploy.Device
	for _, d := range l.Devices() {
		if d.Alive && !d.Replica {
			devs = append(devs, d)
		}
	}
	var neighbors, rejected, strangers, accepted int
	for _, a := range devs {
		for _, b := range devs {
			if a.Handle == b.Handle {
				continue
			}
			truth := a.Pos.InRange(b.Pos, r)
			got := v.Verify(b, a, r)
			if truth {
				neighbors++
				if !got {
					rejected++
				}
			} else {
				strangers++
				if got {
					accepted++
				}
			}
		}
	}
	if neighbors > 0 {
		falseReject = float64(rejected) / float64(neighbors)
	}
	if strangers > 0 {
		falseAccept = float64(accepted) / float64(strangers)
	}
	return falseReject, falseAccept
}
