package verify

import (
	"math/rand"
	"testing"

	"snd/internal/deploy"
	"snd/internal/geometry"
)

func pairLayout(t *testing.T, dist float64) (*deploy.Layout, *deploy.Device, *deploy.Device) {
	t.Helper()
	l := deploy.NewLayout(geometry.NewField(500, 100))
	a := l.Deploy(geometry.Point{X: 0, Y: 50}, 0)
	b := l.Deploy(geometry.Point{X: dist, Y: 50}, 0)
	return l, a, b
}

func TestOracle(t *testing.T) {
	_, a, b := pairLayout(t, 40)
	if !(Oracle{}).Verify(a, b, 50) {
		t.Error("in-range pair rejected")
	}
	_, c, d := pairLayout(t, 60)
	if (Oracle{}).Verify(c, d, 50) {
		t.Error("out-of-range pair accepted")
	}
}

func TestRTTNoiseless(t *testing.T) {
	v := &RTT{}
	_, a, b := pairLayout(t, 49)
	if !v.Verify(a, b, 50) {
		t.Error("noiseless RTT rejected in-range pair")
	}
	_, c, d := pairLayout(t, 51)
	if v.Verify(c, d, 50) {
		t.Error("noiseless RTT accepted out-of-range pair")
	}
}

func TestRTTNoiseCausesBoundaryErrors(t *testing.T) {
	// With σ = 5 m, a pair at 48 m is sometimes rejected and a pair at
	// 52 m sometimes accepted, but pairs far from the boundary are stable.
	v := &RTT{NoiseStd: 5, Rng: rand.New(rand.NewSource(8))}
	_, nearIn, nearInPeer := pairLayout(t, 48)
	_, farIn, farInPeer := pairLayout(t, 5)
	_, farOut, farOutPeer := pairLayout(t, 200)

	rejectsNearBoundary := 0
	for i := 0; i < 500; i++ {
		if !v.Verify(nearIn, nearInPeer, 50) {
			rejectsNearBoundary++
		}
		if !v.Verify(farIn, farInPeer, 50) {
			t.Fatal("pair at 5 m rejected despite noise")
		}
		if v.Verify(farOut, farOutPeer, 50) {
			t.Fatal("pair at 200 m accepted despite noise")
		}
	}
	if rejectsNearBoundary == 0 {
		t.Error("no boundary errors with σ=5; noise not applied")
	}
}

func TestRSSNoiseless(t *testing.T) {
	v := &RSS{PathLossExp: 3}
	_, a, b := pairLayout(t, 30)
	if !v.Verify(a, b, 50) {
		t.Error("noiseless RSS rejected in-range pair")
	}
	_, c, d := pairLayout(t, 80)
	if v.Verify(c, d, 50) {
		t.Error("noiseless RSS accepted out-of-range pair")
	}
	// Sub-reference distances always accepted.
	_, e, f := pairLayout(t, 0.5)
	if !v.Verify(e, f, 50) {
		t.Error("sub-reference distance rejected")
	}
	// Zero exponent defaults to free space instead of dividing by zero.
	vz := &RSS{}
	if !vz.Verify(a, b, 50) {
		t.Error("default exponent broken")
	}
}

func TestRSSShadowingErrors(t *testing.T) {
	v := &RSS{PathLossExp: 3, ShadowingDB: 6, Rng: rand.New(rand.NewSource(3))}
	_, a, b := pairLayout(t, 45)
	rejects := 0
	for i := 0; i < 500; i++ {
		if !v.Verify(a, b, 50) {
			rejects++
		}
	}
	if rejects == 0 {
		t.Error("heavy shadowing produced no boundary errors")
	}
}

func TestLocationClaimPassesReplicas(t *testing.T) {
	// The core premise: a replica planted next to the verifier passes
	// location-claim verification because its claimed position is real.
	l, a, b := pairLayout(t, 300) // b far away from a
	rep, err := l.DeployReplica(b.Node, geometry.Point{X: 10, Y: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := LocationClaim{}
	if v.Verify(b, a, 50) {
		t.Error("distant original accepted")
	}
	if !v.Verify(rep, a, 50) {
		t.Error("physically present replica rejected — premise violated")
	}
	// RTT and Oracle behave the same way: the replica is really there.
	if !(Oracle{}).Verify(rep, a, 50) {
		t.Error("oracle rejected physically present replica")
	}
	if !(&RTT{}).Verify(rep, a, 50) {
		t.Error("rtt rejected physically present replica")
	}
}

func TestTentativeGraphBenign(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(200, 100))
	a := l.Deploy(geometry.Point{X: 0, Y: 50}, 0)
	b := l.Deploy(geometry.Point{X: 30, Y: 50}, 0)
	c := l.Deploy(geometry.Point{X: 150, Y: 50}, 0)
	g := TentativeGraph(l, Oracle{}, 50)
	if !g.HasMutual(a.Node, b.Node) {
		t.Error("benign neighbors missing")
	}
	if g.HasRelation(a.Node, c.Node) || g.HasRelation(c.Node, a.Node) {
		t.Error("distant pair related")
	}
	// Matches the layout's ground truth exactly under the oracle.
	if !g.Equal(l.TruthGraph(50)) {
		t.Error("oracle tentative graph differs from truth graph")
	}
}

func TestTentativeGraphWithReplica(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(400, 100))
	a := l.Deploy(geometry.Point{X: 0, Y: 50}, 0)
	b := l.Deploy(geometry.Point{X: 30, Y: 50}, 0)
	victim := l.Deploy(geometry.Point{X: 350, Y: 50}, 0)
	if _, err := l.DeployReplica(victim.Node, geometry.Point{X: 10, Y: 50}, 1); err != nil {
		t.Fatal(err)
	}
	g := TentativeGraph(l, Oracle{}, 50)
	// The replica establishes tentative relations with a and b far from the
	// victim's original location.
	if !g.HasMutual(a.Node, victim.Node) || !g.HasMutual(b.Node, victim.Node) {
		t.Error("replica failed to create tentative relations")
	}
	// And the truth graph has none of them.
	if l.TruthGraph(50).HasRelation(a.Node, victim.Node) {
		t.Error("truth graph polluted by replica")
	}
}

func TestTentativeGraphSkipsDead(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(100, 100))
	a := l.Deploy(geometry.Point{X: 0, Y: 50}, 0)
	b := l.Deploy(geometry.Point{X: 30, Y: 50}, 0)
	l.Kill(b.Handle)
	g := TentativeGraph(l, Oracle{}, 50)
	if g.HasNode(b.Node) {
		t.Error("dead device in tentative graph")
	}
	if g.OutLen(a.Node) != 0 {
		t.Error("relations to dead device")
	}
}

func TestErrorRatesOracleZero(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(100, 100))
	rng := rand.New(rand.NewSource(12))
	l.DeploySampled(deploy.Uniform{}, 60, rng, 0)
	fr, fa := ErrorRates(l, Oracle{}, 50)
	if fr != 0 || fa != 0 {
		t.Errorf("oracle error rates = %v, %v", fr, fa)
	}
}

func TestErrorRatesRTTSmall(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(100, 100))
	rng := rand.New(rand.NewSource(13))
	l.DeploySampled(deploy.Uniform{}, 60, rng, 0)
	v := &RTT{NoiseStd: 2, Rng: rand.New(rand.NewSource(14))}
	fr, fa := ErrorRates(l, v, 50)
	if fr > 0.1 {
		t.Errorf("false reject rate %v too high for σ=2", fr)
	}
	if fa > 0.1 {
		t.Errorf("false accept rate %v too high for σ=2", fa)
	}
	if fr == 0 && fa == 0 {
		t.Log("no errors observed; acceptable but unusual for σ=2")
	}
}

func TestVerifierNames(t *testing.T) {
	for _, v := range []Verifier{Oracle{}, &RTT{}, &RSS{}, LocationClaim{}} {
		if v.Name() == "" {
			t.Errorf("%T has empty name", v)
		}
	}
}

func BenchmarkTentativeGraph200(b *testing.B) {
	l := deploy.NewLayout(geometry.NewField(100, 100))
	rng := rand.New(rand.NewSource(15))
	l.DeploySampled(deploy.Uniform{}, 200, rng, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TentativeGraph(l, Oracle{}, 50)
	}
}
