package exp

import (
	"context"
	"strings"
	"testing"
)

func TestRoutingAttackImpact(t *testing.T) {
	t.Parallel()
	res, err := Routing(context.Background(), RoutingParams{Trials: 2, Pairs: 80, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	tentative, functional := res.Rows[0], res.Rows[1]
	if tentative.Table == functional.Table {
		t.Fatal("duplicate rows")
	}
	// The replicated blackhole attracts strictly more traffic over the
	// unvalidated topology: the compromised ID sits in neighbor tables
	// near all four corners instead of only near its real home.
	if tentative.Blackholed <= functional.Blackholed {
		t.Errorf("blackholed: tentative %v vs functional %v — validation had no effect",
			tentative.Blackholed, functional.Blackholed)
	}
	// Both topologies still deliver most non-intercepted packets.
	if functional.Delivered < 0.6 {
		t.Errorf("functional delivery %v implausibly low", functional.Delivered)
	}
	// Probabilities sum to 1 per row.
	for _, row := range res.Rows {
		sum := row.Delivered + row.Blackholed + row.Lost
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: outcome fractions sum to %v", row.Table, sum)
		}
	}
	if out := res.Render(); !strings.Contains(out, "GPSR") {
		t.Error("render missing title")
	}
}
