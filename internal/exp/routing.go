package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/georoute"
	"snd/internal/nodeid"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/topology"
)

// RoutingParams configures E11: the application-level impact experiment
// from the paper's introduction — "a sensor node will fail to route
// packets if the next hop on the routing path is not its neighbor" — made
// quantitative with GPSR over an attacked network.
type RoutingParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	Pairs     int
	Trials    int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *RoutingParams) applyDefaults() {
	mergeDefaults(p, RoutingParams{
		Nodes: 300, FieldSide: 100, Range: 25, Threshold: 4, Pairs: 150, Trials: 5,
	})
}

// RoutingRow summarizes GPSR over one neighbor-table source.
type RoutingRow struct {
	Table      string
	Delivered  float64
	Blackholed float64
	Lost       float64
	MeanHops   float64
}

// RoutingResult compares routing over the raw tentative topology against
// the validated functional topology, under the same replication attack.
type RoutingResult struct {
	Rows []RoutingRow
	HealthReport
}

// Render formats the comparison.
func (r *RoutingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== GPSR routing under a replication attack (paper's introduction, quantified) ==\n")
	fmt.Fprintf(&b, "%-28s %10s %12s %8s %10s\n", "neighbor table", "delivered", "blackholed", "lost", "mean hops")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %9.1f%% %11.1f%% %7.1f%% %10.1f\n",
			row.Table, 100*row.Delivered, 100*row.Blackholed, 100*row.Lost, row.MeanHops)
	}
	return b.String()
}

// Routing runs E11: one compromised node replicated at the four corners of
// the field; GPSR routes random source/destination pairs first over the
// tentative topology (what direct verification alone provides — replicas
// included everywhere) and then over the functional topology produced by
// the protocol. Packets whose path crosses the compromised identity are
// blackholed: the attacker attracts and drops them.
func Routing(ctx context.Context, p RoutingParams) (*RoutingResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[routingSample]{
		Name: "routing", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (routingSample, error) {
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: p.Seed + int64(trial),
			})
			if err != nil {
				return routingSample{}, err
			}
			defer s.Close()
			victim := s.Layout().ClosestToCenter().Node
			if err := s.Compromise(victim); err != nil {
				return routingSample{}, err
			}
			inset := p.Range / 4
			for _, c := range []geometry.Point{
				{X: inset, Y: inset}, {X: p.FieldSide - inset, Y: inset},
				{X: inset, Y: p.FieldSide - inset}, {X: p.FieldSide - inset, Y: p.FieldSide - inset},
			} {
				if _, err := s.PlantReplica(victim, c); err != nil {
					return routingSample{}, err
				}
			}
			if err := s.DeployRound(p.Nodes / 3); err != nil {
				return routingSample{}, err
			}

			layout := s.Layout()
			pos := make(map[nodeid.ID]geometry.Point)
			for _, d := range layout.Devices() {
				if !d.Replica && d.Alive {
					pos[d.Node] = d.Pos
				}
			}
			reach := physicalReach(layout, p.Range)
			compromised := s.Attacker().Compromised()

			rng := rand.New(rand.NewSource(p.Seed + 1000 + int64(trial)))
			pairs := benignPairs(pos, compromised, p.Pairs, rng)
			sample := routingSample{
				Pairs: len(pairs),
				Rows:  map[string]routingCounts{},
			}

			tables := map[string]*topology.Graph{
				"tentative (no validation)": s.Tentative(),
				"functional (this paper)":   s.FunctionalGraph(),
			}
			for name, table := range tables {
				router := georoute.New(pos, table, reach)
				var counts routingCounts
				for _, pr := range pairs {
					res, err := router.Route(pr.From, pr.To)
					if err != nil {
						return routingSample{}, err
					}
					switch {
					case pathHitsCompromised(res.Path, compromised):
						counts.Blackholed++
					case res.Delivered:
						counts.Delivered++
						counts.HopsSum += float64(res.Hops)
					default:
						counts.Lost++
					}
				}
				sample.Rows[name] = counts
			}
			return sample, nil
		},
	}, func(out *runner.Outcome[routingSample]) (*RoutingResult, error) {
		agg := map[string]*RoutingRow{
			"tentative (no validation)": {Table: "tentative (no validation)"},
			"functional (this paper)":   {Table: "functional (this paper)"},
		}
		totalPairs := 0
		for _, sample := range out.Points[0] {
			totalPairs += sample.Pairs
			for name, counts := range sample.Rows {
				row := agg[name]
				row.Delivered += counts.Delivered
				row.Blackholed += counts.Blackholed
				row.Lost += counts.Lost
				row.MeanHops += counts.HopsSum
			}
		}
		result := &RoutingResult{}
		for _, name := range []string{"tentative (no validation)", "functional (this paper)"} {
			row := agg[name]
			if row.Delivered > 0 {
				row.MeanHops /= row.Delivered
			}
			n := float64(totalPairs)
			row.Delivered /= n
			row.Blackholed /= n
			row.Lost /= n
			result.Rows = append(result.Rows, *row)
		}
		return result, nil
	})
}

// routingCounts accumulates one table's outcomes over a trial's pairs.
type routingCounts struct {
	Delivered  float64
	Blackholed float64
	Lost       float64
	HopsSum    float64
}

// routingSample is one attacked deployment's routing measurements.
type routingSample struct {
	Pairs int
	Rows  map[string]routingCounts
}

// physicalReach reports whether a frame from node a (primary device)
// reaches some alive device claiming identity b — replicas included,
// which is how they attract traffic addressed to their stolen identity.
func physicalReach(l *deploy.Layout, r float64) func(a, b nodeid.ID) bool {
	return func(a, b nodeid.ID) bool {
		pa := l.Primary(a)
		if pa == nil || !pa.Alive {
			return false
		}
		// Iterator form: this predicate runs once per routing hop, and
		// DevicesOf would allocate and sort a fresh slice each time.
		reached := false
		l.ForEachDeviceOf(b, func(d *deploy.Device) {
			if d.Alive && pa.Pos.InRange(d.Pos, r) {
				reached = true
			}
		})
		return reached
	}
}

func benignPairs(pos map[nodeid.ID]geometry.Point, compromised nodeid.Set, n int, rng *rand.Rand) []nodeid.Pair {
	ids := make([]nodeid.ID, 0, len(pos))
	for id := range pos {
		if !compromised.Contains(id) {
			ids = append(ids, id)
		}
	}
	nodeid.SortIDs(ids)
	pairs := make([]nodeid.Pair, 0, n)
	for len(pairs) < n && len(ids) > 1 {
		a := ids[rng.Intn(len(ids))]
		b := ids[rng.Intn(len(ids))]
		if a != b {
			pairs = append(pairs, nodeid.Pair{From: a, To: b})
		}
	}
	return pairs
}

func pathHitsCompromised(path []nodeid.ID, compromised nodeid.Set) bool {
	for _, id := range path {
		if compromised.Contains(id) {
			return true
		}
	}
	return false
}
