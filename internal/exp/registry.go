package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"

	"snd/internal/runner"
	"snd/internal/stats"
)

// Result is what every experiment returns: a terminal rendering of the
// figure or table, plus the health of the sweep that produced it. Concrete
// result types keep their richer structure (series, rows, bounds) for
// programmatic callers; the interface is what the dispatch layer needs.
type Result interface {
	// Render formats the result for terminal output — the same rows and
	// series the paper reports.
	Render() string
	// Health reports trials lost to the panic-retry budget; degraded cells
	// average fewer samples than requested and should be surfaced.
	Health() SweepHealth
}

// Tabular is implemented by results whose rendering is a stats.Table;
// machine-readable output paths (sndfig -format csv) use it, falling back
// to Render for free-text results.
type Tabular interface{ Table() *stats.Table }

// Experiment is one entry of the registry: a named, described runner with
// typed parameters. The registered value carries its zero params and acts
// as a prototype; Decode returns a new instance bound to the decoded
// params, and Run executes whatever the instance is bound to (the
// prototype runs the paper defaults). All three binaries dispatch through
// this interface, so adding a scenario means registering one component —
// not editing three tables.
type Experiment interface {
	// Name is the registry key, shared verbatim by sndfig -exp, sndsim
	// -exp, and the sndserve job API.
	Name() string
	// Describe is a one-line human summary for catalogs.
	Describe() string
	// DefaultParams returns the fully-defaulted params struct — the
	// configuration Run executes: the bound params with every unset field
	// filled in (on a registry prototype, the pure experiment defaults).
	DefaultParams() any
	// Decode strictly parses a JSON params document (unknown or mistyped
	// fields are errors naming the field) and returns an instance bound to
	// it. Empty input binds the zero params, which run the defaults.
	Decode(raw json.RawMessage) (Experiment, error)
	// Run executes the bound params on eng (nil falls back to the shared
	// runner.Default() pool).
	Run(ctx context.Context, eng *runner.Engine) (Result, error)
	// Schema describes the params fields — name, Go type, default value —
	// derived by reflection for the catalog endpoint and docs.
	Schema() []ParamField
}

// ParamField is one entry of an experiment's reflection-derived params
// schema.
type ParamField struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Default any    `json:"default"`
}

// CatalogEntry is the catalog view of one registered experiment, served by
// sndserve's GET /experiments.
type CatalogEntry struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	Params      []ParamField `json:"params"`
	Defaults    any          `json:"defaults"`
}

// defaulter is implemented by every params struct: applyDefaults fills
// zero-valued fields with the paper's configuration.
type defaulter interface{ applyDefaults() }

// definition is the generic Experiment implementation: a registered name
// and description plus the typed run function. P is the params struct and
// R the concrete result type.
type definition[P any, R Result] struct {
	name   string
	desc   string
	params P
	run    func(ctx context.Context, eng *runner.Engine, p P) (R, error)
}

func (d *definition[P, R]) Name() string     { return d.name }
func (d *definition[P, R]) Describe() string { return d.desc }

func (d *definition[P, R]) DefaultParams() any {
	p := d.params
	if dp, ok := any(&p).(defaulter); ok {
		dp.applyDefaults()
	}
	return p
}

func (d *definition[P, R]) Decode(raw json.RawMessage) (Experiment, error) {
	var p P
	if len(raw) > 0 {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("%s params: %w", d.name, err)
		}
	}
	bound := *d
	bound.params = p
	return &bound, nil
}

func (d *definition[P, R]) Run(ctx context.Context, eng *runner.Engine) (Result, error) {
	// Tag the context with the registry name so the engine can offer the
	// run's sweeps to a distribution backend: a remote worker re-derives
	// the trial function by looking this name up in its own registry.
	r, err := d.run(runner.WithJobExperiment(ctx, d.name), eng, d.params)
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (d *definition[P, R]) Schema() []ParamField {
	def := reflect.ValueOf(d.DefaultParams())
	t := def.Type()
	out := make([]ParamField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("json") == "-" {
			continue
		}
		out = append(out, ParamField{
			Name:    f.Name,
			Type:    f.Type.String(),
			Default: def.Field(i).Interface(),
		})
	}
	return out
}

// The package registry. Registration happens in catalog.go's init, so no
// locking is needed: the maps are read-only once the package is loaded.
var (
	registryByName = map[string]Experiment{}
	registryOrder  []Experiment
)

// Register adds one experiment definition: a name, a one-line description,
// and the typed run function. P is the params struct (zero values mean
// paper defaults) and R the concrete result type. The built-in catalog
// registers through it at init; external packages may add experiments the
// same way before serving traffic. Duplicate names are a programming error
// and panic.
func Register[P any, R Result](name, desc string, run func(context.Context, *runner.Engine, P) (R, error)) {
	if _, dup := registryByName[name]; dup {
		panic("exp: duplicate experiment " + name)
	}
	d := &definition[P, R]{name: name, desc: desc, run: run}
	registryByName[name] = d
	registryOrder = append(registryOrder, d)
}

// Lookup resolves a registered experiment by name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registryByName[name]
	return e, ok
}

// Names returns every registered name, sorted. sndfig -list, sndsim -list,
// and sndserve's catalog all derive from it, so the three views cannot
// disagree.
func Names() []string {
	out := make([]string, 0, len(registryByName))
	for name := range registryByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered experiment in registration order — the
// curated sequence sndfig -all prints.
func All() []Experiment {
	return append([]Experiment(nil), registryOrder...)
}

// Catalog returns the full catalog, sorted by name.
func Catalog() []CatalogEntry {
	out := make([]CatalogEntry, 0, len(registryByName))
	for _, name := range Names() {
		e := registryByName[name]
		out = append(out, CatalogEntry{
			Name:        e.Name(),
			Description: e.Describe(),
			Params:      e.Schema(),
			Defaults:    e.DefaultParams(),
		})
	}
	return out
}

// DecodeCLI builds a bound experiment from a CLI invocation: an explicit
// JSON params document plus the shared -trials/-seed flags. The flags apply
// only where they mean something — the params struct has the field and the
// document does not already set it — so `-params '{"Seed":5}'` wins over
// the -seed default, and experiments without a Trials knob ignore the
// override instead of rejecting it. trials <= 0 means "experiment default".
func DecodeCLI(name, paramsJSON string, trials int, seed int64) (Experiment, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (see -list)", name)
	}
	doc := map[string]json.RawMessage{}
	if paramsJSON != "" {
		if err := json.Unmarshal([]byte(paramsJSON), &doc); err != nil {
			return nil, fmt.Errorf("%s params: %w", name, err)
		}
	}
	has := func(field string) bool {
		for _, f := range e.Schema() {
			if f.Name == field {
				return true
			}
		}
		return false
	}
	if _, set := doc["Trials"]; !set && trials > 0 && has("Trials") {
		doc["Trials"] = json.RawMessage(fmt.Sprintf("%d", trials))
	}
	if _, set := doc["Seed"]; !set && has("Seed") {
		doc["Seed"] = json.RawMessage(fmt.Sprintf("%d", seed))
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		return nil, err
	}
	// Decode the merged document through the registry's strict decoder, so
	// a typoed field in -params fails the same way it does over HTTP.
	return e.Decode(raw)
}

// WarnIfDegraded prints the shared degraded-sweep warning when the sweep
// behind r lost trials to the panic-retry budget. Implemented once against
// Result.Health so every binary reports degradation identically.
func WarnIfDegraded(w io.Writer, name string, r Result) {
	if h := r.Health(); h.Degraded() {
		fmt.Fprintf(w, "warning: %s sweep degraded: %s\n", name, h)
	}
}
