package exp

import (
	"context"
	"math"
	"math/rand"

	"snd/internal/analysis"
	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/runner"
	"snd/internal/stats"
)

// ScaleParams configures the million-node accuracy experiment (E1 at
// scale). Defaults: 10⁶ nodes uniform at one device per 100 m²
// (FieldSide = 10·√Nodes), R = 25 m (≈ 19.6 expected neighbors), the
// Figure 3 validation fraction measured over a 10,000-node sample.
type ScaleParams struct {
	Nodes int
	// FieldSide is the square field edge in meters; 0 derives it from
	// Nodes at the default density of one device per 100 m².
	FieldSide float64
	Range     float64
	// Thresholds is the x-axis grid (default 0..16 step 2).
	Thresholds []int
	// Samples is how many nodes per deployment the validation profile
	// averages over. Sampling keeps the measurement O(Samples·k²) instead
	// of O(Nodes·k²) while the sample mean stays an unbiased estimate.
	Samples int
	Trials  int
	Seed    int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *ScaleParams) applyDefaults() {
	mergeDefaults(p, ScaleParams{
		Nodes: 1_000_000, Range: 25,
		Thresholds: seqInts(0, 16, 2),
		Samples:    10_000, Trials: 3,
	})
	if p.FieldSide == 0 {
		p.FieldSide = 10 * math.Sqrt(float64(p.Nodes))
	}
}

// ScaleResult carries the sampled validation curve at n=10⁶ next to the
// Section 4.4.1 theoretical curve, plus the deployment's realized
// connectivity so the density regime is visible in the output.
type ScaleResult struct {
	Theory     stats.Series
	Simulation stats.Series
	// MeanDegree is the realized mean tentative-neighbor count.
	MeanDegree float64
	Nodes      int
	HealthReport
}

// Table renders the result in the harness format.
func (r *ScaleResult) Table() *stats.Table {
	return &stats.Table{
		Title:  "Scale — validated-neighbor fraction vs threshold t at n=10^6",
		XLabel: "t",
		Series: []*stats.Series{&r.Theory, &r.Simulation},
		Comment: "constant density 1 device / 100 m^2; sampled nodes per deployment; " +
			"handle-dense engines, CSR tentative topology",
	}
}

// Render formats the table for terminal output.
func (r *ScaleResult) Render() string { return r.Table().Render() }

// scaleSample is one million-node deployment's sampled validation profile.
type scaleSample struct {
	Fractions  []float64
	MeanDegree float64
}

// Scale runs the headline scale experiment: the Figure 3 methodology —
// validated fraction of actual neighbors vs threshold t — at a million
// nodes. The all-benign deployment makes the tentative topology equal the
// ground-truth graph, which the layout builds in frozen CSR form through
// the pooled parallel cell sweep; the validation profile is then measured
// over a uniform sample of nodes rather than the single center node, so
// one trial exercises the dense-state pipeline end to end (deploy →
// spatial index → CSR build → common-neighbor counting) at the target n.
func Scale(ctx context.Context, p ScaleParams) (*ScaleResult, error) {
	p.applyDefaults()
	field := geometry.NewField(p.FieldSide, p.FieldSide)
	model := analysis.Model{
		Density: float64(p.Nodes) / field.Area(),
		Range:   p.Range,
	}
	return runGrid(ctx, p.Engine, grid[scaleSample]{
		Name: "scale", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (scaleSample, error) {
			rng := rand.New(rand.NewSource(runner.TrialSeed(p.Seed, 0, trial)))
			l := deploy.NewLayout(field)
			l.DeploySampled(deploy.Uniform{}, p.Nodes, rng, 0)
			tent := l.TruthGraph(p.Range)
			nodes := tent.Nodes()

			// Partial Fisher-Yates: the first Samples entries of idx become
			// a uniform sample without replacement.
			idx := make([]int32, len(nodes))
			for i := range idx {
				idx[i] = int32(i)
			}
			k := p.Samples
			if k <= 0 || k > len(idx) {
				k = len(idx)
			}
			for i := 0; i < k; i++ {
				j := i + rng.Intn(len(idx)-i)
				idx[i], idx[j] = idx[j], idx[i]
			}

			sample := scaleSample{Fractions: make([]float64, len(p.Thresholds))}
			validated := make([]int, len(p.Thresholds))
			pairs := 0
			for _, i := range idx[:k] {
				u := nodes[i]
				neighbors := tent.OutIDs(u)
				sample.MeanDegree += float64(len(neighbors))
				for _, v := range neighbors {
					c := tent.CommonOut(u, v)
					pairs++
					for ti, t := range p.Thresholds {
						if c >= t+1 {
							validated[ti]++
						}
					}
				}
			}
			if k > 0 {
				sample.MeanDegree /= float64(k)
			}
			for ti := range p.Thresholds {
				if pairs > 0 {
					sample.Fractions[ti] = float64(validated[ti]) / float64(pairs)
				} else {
					sample.Fractions[ti] = 1
				}
			}
			return sample, nil
		},
	}, func(out *runner.Outcome[scaleSample]) (*ScaleResult, error) {
		res := &ScaleResult{
			Theory:     stats.Series{Name: "theory f_b"},
			Simulation: stats.Series{Name: "simulation n=1e6"},
			Nodes:      p.Nodes,
		}
		perThreshold := make([][]float64, len(p.Thresholds))
		degrees := 0.0
		for _, sample := range out.Points[0] {
			for i, f := range sample.Fractions {
				perThreshold[i] = append(perThreshold[i], f)
			}
			degrees += sample.MeanDegree
		}
		if n := len(out.Points[0]); n > 0 {
			res.MeanDegree = degrees / float64(n)
		}
		for i, t := range p.Thresholds {
			res.Theory.Append(float64(t), model.Accuracy(t), 0)
			s := stats.Summarize(perThreshold[i])
			res.Simulation.Append(float64(t), s.Mean, s.CI95())
		}
		return res, nil
	})
}
