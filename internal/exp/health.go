package exp

import (
	"fmt"
	"strings"

	"snd/internal/runner"
)

// SweepHealth reports degradation of the sweep behind a result. The
// engine drops a trial after its panic-retry budget is exhausted, which
// silently shrinks that cell's sample count and biases its mean — so
// every experiment result carries the loss explicitly and cmd/sndfig
// warns when any cell is degraded instead of presenting a biased table as
// clean.
type SweepHealth struct {
	// DroppedByPoint[i] is how many trials at point i were dropped after
	// exhausting the panic-retry budget. Empty or all-zero means every
	// scheduled trial delivered a sample.
	DroppedByPoint []int `json:"dropped_by_point,omitempty"`
	// Dropped is the total across points.
	Dropped int `json:"dropped,omitempty"`
}

// Degraded reports whether any cell lost trials.
func (h SweepHealth) Degraded() bool { return h.Dropped > 0 }

// String renders the loss, e.g. "3 trials dropped (point 1: 2, point 4: 1)".
func (h SweepHealth) String() string {
	if !h.Degraded() {
		return "healthy"
	}
	var cells []string
	for p, n := range h.DroppedByPoint {
		if n > 0 {
			cells = append(cells, fmt.Sprintf("point %d: %d", p, n))
		}
	}
	noun := "trials"
	if h.Dropped == 1 {
		noun = "trial"
	}
	return fmt.Sprintf("%d %s dropped (%s)", h.Dropped, noun, strings.Join(cells, ", "))
}

// healthOf extracts the degradation report from a sweep outcome.
func healthOf[T any](out *runner.Outcome[T]) SweepHealth {
	h := SweepHealth{Dropped: out.Failed}
	if out.Failed > 0 {
		h.DroppedByPoint = out.Dropped
	}
	return h
}
