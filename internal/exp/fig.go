// Package exp implements the paper's experiments behind a single
// self-registering catalog: every runner is registered once (catalog.go)
// as an Experiment — name, description, typed params with a
// reflection-derived schema, strict JSON decode, and a Run method — and
// cmd/sndfig, cmd/sndsim, and cmd/sndserve all dispatch through that one
// registry instead of keeping per-binary experiment tables. Adding a
// scenario means writing a params struct, one trial function, and one
// reducer, then registering the triple; the binaries, the HTTP catalog,
// and the docs pick it up automatically.
//
// Every runner executes its trials through internal/runner via the shared
// runGrid scaffold (sweep.go): each trial is a pure function of its
// (point, trial) grid indices, so the engine can shard trials across
// workers — and memoize them in a content-addressed cache — while
// producing results bit-identical to a serial run for a fixed seed.
// Params structs carry an optional Engine; nil falls back to the shared
// runner.Default() pool.
//
// Every runner takes a context.Context and propagates it to the engine:
// cancelling the context stops the sweep promptly (no new trials are
// scheduled) and the runner returns ctx.Err(). Completed trials stay in
// the engine cache, so a re-run resumes where the interruption hit.
// Every result implements Result: Render() prints the same rows and
// series the paper reports, and Health() exposes trials lost to the
// panic-retry budget, so degraded cells are visible instead of silently
// biasing means.
package exp

import (
	"context"
	"math/rand"
	"strconv"

	"snd/internal/analysis"
	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/runner"
	"snd/internal/stats"
)

// Fig3Params configures the Figure 3 reproduction. The defaults are the
// paper's: 200 nodes uniform in 100×100 m (density 1 per 50 m²), R = 50 m,
// measurements taken at the node closest to the field center.
type Fig3Params struct {
	Nodes     int
	FieldSide float64
	Range     float64
	// Thresholds is the x-axis grid (default 0..160 step 10).
	Thresholds []int
	// Trials averages the simulated curve over this many deployments.
	Trials int
	Seed   int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *Fig3Params) applyDefaults() {
	mergeDefaults(p, Fig3Params{
		Nodes: 200, FieldSide: 100, Range: 50,
		Thresholds: seqInts(0, 160, 10), Trials: 50,
	})
}

// Fig3Result carries both curves of Figure 3.
type Fig3Result struct {
	Theory     stats.Series
	Simulation stats.Series
	HealthReport
}

// Table renders the result in the harness format.
func (r *Fig3Result) Table() *stats.Table {
	return &stats.Table{
		Title:   "Figure 3 — fraction of actual neighbors validated vs threshold t",
		XLabel:  "t",
		Series:  []*stats.Series{&r.Theory, &r.Simulation},
		Comment: "R=50 m, 200 nodes in 100x100 m (D = 1 node / 50 m^2); center node sampled",
	}
}

// Render formats the table for terminal output.
func (r *Fig3Result) Render() string { return r.Table().Render() }

// fig3Sample is one deployment's validation profile across the threshold
// grid.
type fig3Sample struct {
	Fractions []float64
}

// Fig3 reproduces Figure 3: the fraction of a benign center node's actual
// neighbors that pass the |N(u) ∩ N(v)| ≥ t+1 validation, as a function of
// t — the theoretical curve from the Section 4.4.1 model next to the
// simulated one.
//
// The simulation measures the exact quantity the protocol computes (common
// tentative neighbors against the threshold) directly on the tentative
// topology; the full message-level protocol is exercised end to end in
// package sim and produces matching numbers (see sim's
// TestCenterAccuracyTracksTheory).
func Fig3(ctx context.Context, p Fig3Params) (*Fig3Result, error) {
	p.applyDefaults()
	field := geometry.NewField(p.FieldSide, p.FieldSide)
	model := analysis.Model{
		Density: float64(p.Nodes) / field.Area(),
		Range:   p.Range,
	}
	// One deployment per trial yields a full common-neighbor profile of
	// the center node; every threshold is then evaluated on it.
	return runGrid(ctx, p.Engine, grid[fig3Sample]{
		Name: "fig3", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (fig3Sample, error) {
			rng := rand.New(rand.NewSource(runner.TrialSeed(p.Seed, 0, trial)))
			return fig3Sample{
				Fractions: centerValidationProfile(field, p.Nodes, p.Range, p.Thresholds, rng),
			}, nil
		},
	}, func(out *runner.Outcome[fig3Sample]) (*Fig3Result, error) {
		res := &Fig3Result{
			Theory:     stats.Series{Name: "theory f_b"},
			Simulation: stats.Series{Name: "simulation"},
		}
		perThreshold := make([][]float64, len(p.Thresholds))
		for _, sample := range out.Points[0] {
			for i, f := range sample.Fractions {
				perThreshold[i] = append(perThreshold[i], f)
			}
		}
		for i, t := range p.Thresholds {
			res.Theory.Append(float64(t), model.Accuracy(t), 0)
			s := stats.Summarize(perThreshold[i])
			res.Simulation.Append(float64(t), s.Mean, s.CI95())
		}
		return res, nil
	})
}

// centerValidationProfile deploys one network and returns, for each
// threshold, the fraction of the center node's actual neighbors with at
// least t+1 common tentative neighbors.
//
// The deployment is all-benign (no replicas, no kills) and the oracle
// verifier accepts exactly the in-range pairs, so the tentative topology
// equals the ground-truth graph — which the layout builds in frozen CSR
// form through the pooled cell sweep. Common-neighbor counts over the
// sorted CSR rows replace the per-pair set intersections the map-backed
// tentative graph used; the relation set, and therefore every fraction,
// is identical.
func centerValidationProfile(field geometry.Rect, nodes int, r float64, thresholds []int, rng *rand.Rand) []float64 {
	l := deploy.NewLayout(field)
	l.DeploySampled(deploy.Uniform{}, nodes, rng, 0)
	tent := l.TruthGraph(r)
	center := l.ClosestToCenter()
	neighbors := tent.OutIDs(center.Node)

	out := make([]float64, len(thresholds))
	if len(neighbors) == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	// Common-neighbor counts, one pass.
	counts := make([]int, 0, len(neighbors))
	for _, v := range neighbors {
		counts = append(counts, tent.CommonOut(center.Node, v))
	}
	for i, t := range thresholds {
		validated := 0
		for _, c := range counts {
			if c >= t+1 {
				validated++
			}
		}
		out[i] = float64(validated) / float64(len(counts))
	}
	return out
}

// Fig4Params configures the Figure 4 reproduction: validated fraction vs
// deployment density for several thresholds. Defaults follow the paper:
// densities 10..50 nodes per 1,000 m², R = 50 m, t ∈ {10, 30, 50}.
type Fig4Params struct {
	FieldSide  float64
	Range      float64
	Densities  []float64 // nodes per 1,000 m²
	Thresholds []int
	Trials     int
	Seed       int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *Fig4Params) applyDefaults() {
	mergeDefaults(p, Fig4Params{
		FieldSide: 100, Range: 50,
		Densities:  []float64{10, 15, 20, 25, 30, 35, 40, 45, 50},
		Thresholds: []int{10, 30, 50},
		Trials:     50,
	})
}

// Fig4Result holds one simulated curve per threshold.
type Fig4Result struct {
	Curves []*stats.Series
	HealthReport
}

// Table renders the result in the harness format.
func (r *Fig4Result) Table() *stats.Table {
	return &stats.Table{
		Title:   "Figure 4 — fraction of actual neighbors validated vs deployment density",
		XLabel:  "nodes/1000 m^2",
		Series:  r.Curves,
		Comment: "R=50 m, 100x100 m field; center node sampled",
	}
}

// Render formats the table for terminal output.
func (r *Fig4Result) Render() string { return r.Table().Render() }

// Fig4 reproduces Figure 4: validated-neighbor fraction as a function of
// deployment density, for t ∈ {10, 30, 50}. Each density is one point of
// the sweep grid, so densities shard across workers as well as trials.
func Fig4(ctx context.Context, p Fig4Params) (*Fig4Result, error) {
	p.applyDefaults()
	field := geometry.NewField(p.FieldSide, p.FieldSide)
	return runGrid(ctx, p.Engine, grid[fig3Sample]{
		Name: "fig4", Params: p, Points: len(p.Densities), Trials: p.Trials,
		Trial: func(point, trial int) (fig3Sample, error) {
			nodes := int(p.Densities[point] / 1000 * field.Area())
			rng := rand.New(rand.NewSource(runner.TrialSeed(p.Seed, point, trial)))
			return fig3Sample{
				Fractions: centerValidationProfile(field, nodes, p.Range, p.Thresholds, rng),
			}, nil
		},
	}, func(out *runner.Outcome[fig3Sample]) (*Fig4Result, error) {
		res := &Fig4Result{}
		for _, t := range p.Thresholds {
			res.Curves = append(res.Curves, &stats.Series{Name: seriesNameForThreshold(t)})
		}
		for pi, density := range p.Densities {
			perT := make([][]float64, len(p.Thresholds))
			for _, sample := range out.Points[pi] {
				for i, f := range sample.Fractions {
					perT[i] = append(perT[i], f)
				}
			}
			for i := range p.Thresholds {
				s := stats.Summarize(perT[i])
				res.Curves[i].Append(density, s.Mean, s.CI95())
			}
		}
		return res, nil
	})
}

func seriesNameForThreshold(t int) string {
	return "t=" + strconv.Itoa(t)
}
