package exp

import (
	"context"

	"snd/internal/runner"
)

// HealthReport is embedded by every result type. It carries the sweep's
// degradation report (serialized under the historical "Health" key) and
// implements the Result interface's Health accessor, so the scaffold can
// attach drop accounting to any result generically.
type HealthReport struct {
	Sweep SweepHealth `json:"Health"`
}

// Health reports trials dropped from the underlying sweep.
func (h *HealthReport) Health() SweepHealth { return h.Sweep }

// setHealth is the scaffold's hook for attaching the outcome's report.
func (h *HealthReport) setHealth(s SweepHealth) { h.Sweep = s }

// healthCarrier is satisfied by every result via the HealthReport embed.
type healthCarrier interface{ setHealth(SweepHealth) }

// grid declares one experiment's sweep shape: the cache-keying params, the
// (point, trial) extent, and the trial function computing one cell.
type grid[S any] struct {
	// Name namespaces the trial cache (it is the registered experiment
	// name for every runner in this package).
	Name string
	// Params must capture everything Trial closes over; it keys the cache.
	Params any
	// Points and Trials give the grid extent.
	Points, Trials int
	// Trial computes one cell as a pure function of its indices.
	Trial runner.TrialFunc[S]
}

// runGrid is the generic sweep scaffold every runner calls: it executes the
// grid on the engine (nil falls back to runner.Default()), hands the dense
// outcome to reduce in deterministic cell order, and attaches the sweep's
// drop accounting to the reduced result. With this scaffold a runner is
// just its params struct, one trial function, and one reducer.
func runGrid[S any, R Result](ctx context.Context, eng *runner.Engine, g grid[S],
	reduce func(out *runner.Outcome[S]) (R, error)) (R, error) {
	var zero R
	out, err := runner.MapCtx(ctx, eng, runner.Spec{
		Experiment: g.Name, Params: g.Params, Points: g.Points, Trials: g.Trials,
	}, g.Trial)
	if err != nil {
		return zero, err
	}
	res, err := reduce(out)
	if err != nil {
		return zero, err
	}
	if hc, ok := any(res).(healthCarrier); ok {
		hc.setHealth(healthOf(out))
	}
	return res, nil
}
