package exp

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"snd/internal/adversary"
	"snd/internal/central"
	"snd/internal/core"
	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/replica"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/stats"
	"snd/internal/topology"
	"snd/internal/verify"
)

// ImpossibilityParams configures E5: the Theorem 1/2 substitution attack
// against topology-only validation, contrasted with the paper's protocol
// under the same adversary.
type ImpossibilityParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	Trials    int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *ImpossibilityParams) applyDefaults() {
	mergeDefaults(p, ImpossibilityParams{
		Nodes: 300, FieldSide: 100, Range: 25, Threshold: 4, Trials: 20,
	})
}

// ImpossibilityResult compares attack success against the two validator
// families.
type ImpossibilityResult struct {
	// TopologyOnlySuccess is the fraction of trials where the forged
	// relations made a distant benign target validate the compromised node
	// under the topology-only common-neighbor rule.
	TopologyOnlySuccess float64
	// TopologyOnlyReach is the mean distance (m) between the fooled target
	// and the compromised node's origin in successful trials.
	TopologyOnlyReach float64
	// ProtocolSuccess is the fraction of trials where a replica of the
	// compromised node achieved functional acceptance beyond 2R under the
	// paper's protocol.
	ProtocolSuccess float64
	Bound           float64
	HealthReport
}

// Render formats the comparison.
func (r *ImpossibilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Theorems 1-2 — generic attack vs localized validation ==\n")
	fmt.Fprintf(&b, "%-38s %14s %18s\n", "validator", "attack success", "mean fooled reach")
	fmt.Fprintf(&b, "%-38s %13.0f%% %16.1f m\n", "common-neighbor (topology only)",
		100*r.TopologyOnlySuccess, r.TopologyOnlyReach)
	fmt.Fprintf(&b, "%-38s %13.0f%% %18s\n", "paper protocol (crypto binding)",
		100*r.ProtocolSuccess, "≤ 2R by Thm 3")
	fmt.Fprintf(&b, "bound 2R = %.0f m\n", r.Bound)
	return b.String()
}

// impossibilitySample is one trial of the Theorem 1/2 contrast.
type impossibilitySample struct {
	TopoWin  bool
	Reach    float64
	ProtoWin bool
}

// Impossibility runs E5. For the topology-only rule, the attacker uses the
// Theorem 2 substitution: compromise one node, forge relations around a
// benign target on the far side of the field, and win. Against the paper's
// protocol, the same adversary plants a physical replica next to the
// target area and fresh nodes still reject it.
func Impossibility(ctx context.Context, p ImpossibilityParams) (*ImpossibilityResult, error) {
	p.applyDefaults()
	rule := topology.CommonNeighborRule{Threshold: p.Threshold}
	return runGrid(ctx, p.Engine, grid[impossibilitySample]{
		Name: "impossibility", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (impossibilitySample, error) {
			seed := p.Seed + int64(trial)
			var sample impossibilitySample
			// --- Topology-only validator under the substitution attack.
			l := deploy.NewLayout(geometry.NewField(p.FieldSide, p.FieldSide))
			rng := rand.New(rand.NewSource(seed))
			l.DeploySampled(deploy.Uniform{}, p.Nodes, rng, 0)
			tent := verify.TentativeGraph(l, verify.Oracle{}, p.Range)

			victim, target := farthestPair(l)
			if victim == nil || target == nil {
				return sample, nil
			}
			att := adversary.New(seed)
			// The graph-level attack needs only the right to forge relations
			// regarding the compromised identity.
			att.MarkCompromised(victim.Node)
			forged, err := att.ForgeSubstitution(tent, rule, target.Node, victim.Node)
			if err == nil {
				adversary.InjectRelations(tent, forged)
				if rule.Validate(target.Node, victim.Node, tent) {
					sample.TopoWin = true
					sample.Reach = victim.Origin.Dist(target.Origin)
				}
			}

			// --- The paper's protocol under the physical-replica version of
			// the same adversary.
			ps, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: seed,
			})
			if err != nil {
				return sample, err
			}
			defer ps.Close()
			pv, pt := farthestPair(ps.Layout())
			if pv == nil || pt == nil {
				return sample, nil
			}
			if err := ps.Compromise(pv.Node); err != nil {
				return sample, err
			}
			if _, err := ps.PlantReplica(pv.Node, pt.Origin); err != nil {
				return sample, err
			}
			staging := geometry.Rect{
				Min: geometry.Point{X: pt.Origin.X - 15, Y: pt.Origin.Y - 15},
				Max: geometry.Point{X: pt.Origin.X + 15, Y: pt.Origin.Y + 15},
			}
			if err := ps.DeployRoundAt(p.Nodes/10, deploy.Within{Region: staging}); err != nil {
				return sample, err
			}
			sample.ProtoWin = core.Violations(ps.AuditSafety(2*p.Range)) > 0
			return sample, nil
		},
	}, func(out *runner.Outcome[impossibilitySample]) (*ImpossibilityResult, error) {
		res := &ImpossibilityResult{Bound: 2 * p.Range}
		var reachSum float64
		var topoWins, protoWins int
		for _, sample := range out.Points[0] {
			if sample.TopoWin {
				topoWins++
				reachSum += sample.Reach
			}
			if sample.ProtoWin {
				protoWins++
			}
		}
		res.TopologyOnlySuccess = float64(topoWins) / float64(p.Trials)
		if topoWins > 0 {
			res.TopologyOnlyReach = reachSum / float64(topoWins)
		}
		res.ProtocolSuccess = float64(protoWins) / float64(p.Trials)
		return res, nil
	})
}

// farthestPair returns the two alive non-replica devices with the largest
// separation.
func farthestPair(l *deploy.Layout) (a, b *deploy.Device) {
	devs := l.Devices()
	best := -1.0
	for i, x := range devs {
		if x.Replica || !x.Alive {
			continue
		}
		for _, y := range devs[i+1:] {
			if y.Replica || !y.Alive {
				continue
			}
			if d := x.Origin.Dist2(y.Origin); d > best {
				best, a, b = d, x, y
			}
		}
	}
	return a, b
}

// CompareParams configures E8: the quantitative version of the paper's
// Section 4.5 comparison against Parno et al.
type CompareParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	Trials    int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *CompareParams) applyDefaults() {
	mergeDefaults(p, CompareParams{
		Nodes: 150, FieldSide: 100, Range: 25, Threshold: 4, Trials: 10,
	})
}

// CompareRow is one scheme's line in the comparison table.
type CompareRow struct {
	Scheme string
	// Defense is the detection rate (baselines) or prevention rate (the
	// paper's protocol: replica gained no acceptance beyond 2R).
	Defense float64
	// Mode describes what Defense measures.
	Mode string
	// MsgsPerNode is the mean communication overhead.
	MsgsPerNode float64
	// StoragePerNode is claims (baselines) or bytes (protocol) per node.
	StoragePerNode float64
	StorageUnit    string
	// NeedsLocation marks dependence on secure location information.
	NeedsLocation bool
}

// CompareResult is the Section 4.5 comparison table.
type CompareResult struct {
	Rows []CompareRow
	HealthReport
}

// Render formats the comparison table.
func (r *CompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Comparison with Parno et al. (replication attack, paper Section 4.5) ==\n")
	fmt.Fprintf(&b, "%-28s %10s %-11s %12s %16s %14s\n",
		"scheme", "defense", "mode", "msgs/node", "storage/node", "needs location")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %9.0f%% %-11s %12.1f %11.1f %s %14v\n",
			row.Scheme, 100*row.Defense, row.Mode, row.MsgsPerNode,
			row.StoragePerNode, row.StorageUnit, row.NeedsLocation)
	}
	return b.String()
}

// compareSample is one trial of the Section 4.5 comparison: the per-scheme
// measurements of a single attacked deployment.
type compareSample struct {
	RmDetect, LsmDetect   bool
	RmMsgs, LsmMsgs       float64
	RmStore, LsmStore     float64
	CentDetect            bool
	CentMsgs, CentBytes   float64
	ProtoPrevent          bool
	ProtoMsgs, ProtoStore float64
}

// Compare runs E8: a replication attack (one compromised node, one far
// replica) against (a) no defense, (b) randomized multicast, (c)
// line-selected multicast, and (d) this paper's protocol, measuring
// defense rate and overhead for each.
func Compare(ctx context.Context, p CompareParams) (*CompareResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[compareSample]{
		Name: "compare", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (compareSample, error) {
			seed := p.Seed + int64(trial)
			var sample compareSample
			// Baselines run over a static attacked layout.
			l := deploy.NewLayout(geometry.NewField(p.FieldSide, p.FieldSide))
			rng := rand.New(rand.NewSource(seed))
			l.DeploySampled(deploy.Uniform{}, p.Nodes, rng, 0)
			victim, far := farthestPair(l)
			if _, err := l.DeployReplica(victim.Node, far.Origin, 1); err != nil {
				return sample, err
			}
			net := replica.BuildNetwork(l, p.Range, []byte("compare"))
			cfg := replica.RecommendedConfig(net)
			rm := replica.RandomizedMulticast(net, cfg, rand.New(rand.NewSource(seed+500)))
			lsm := replica.LineSelectedMulticast(net,
				replica.Config{ForwardProb: cfg.ForwardProb, Witnesses: 1},
				rand.New(rand.NewSource(seed+900)))
			sample.RmDetect = rm.Detected
			sample.LsmDetect = lsm.Detected
			sample.RmMsgs = float64(rm.Messages) / float64(net.Size())
			sample.LsmMsgs = float64(lsm.Messages) / float64(net.Size())
			sample.RmStore = float64(rm.MaxStored)
			sample.LsmStore = float64(lsm.MaxStored)

			// The centralized alternative (paper Section 4 opening): a base
			// station gathers the whole tentative topology and looks for
			// identities whose neighborhood splits into disconnected patches.
			tent := verify.TentativeGraph(l, verify.Oracle{}, p.Range)
			for _, id := range central.DetectSplitNeighborhoods(tent, 2) {
				if id == victim.Node {
					sample.CentDetect = true
					break
				}
			}
			cost := central.CollectionCost(l, p.Range, geometry.Point{X: p.FieldSide / 2, Y: p.FieldSide / 2},
				func(id nodeid.ID) int { return 8 + 4*tent.OutLen(id) })
			sample.CentMsgs = float64(cost.Messages) / float64(net.Size())
			sample.CentBytes = float64(cost.Bytes) / float64(net.Size())

			// The paper's protocol under the same attack, end to end.
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: seed,
			})
			if err != nil {
				return sample, err
			}
			defer s.Close()
			sv, sfar := farthestPair(s.Layout())
			if err := s.Compromise(sv.Node); err != nil {
				return sample, err
			}
			if _, err := s.PlantReplica(sv.Node, sfar.Origin); err != nil {
				return sample, err
			}
			staging := geometry.Rect{
				Min: geometry.Point{X: sfar.Origin.X - 15, Y: sfar.Origin.Y - 15},
				Max: geometry.Point{X: sfar.Origin.X + 15, Y: sfar.Origin.Y + 15},
			}
			if err := s.DeployRoundAt(p.Nodes/10, deploy.Within{Region: staging}); err != nil {
				return sample, err
			}
			sample.ProtoPrevent = core.Violations(s.AuditSafety(2*p.Range)) == 0
			o := s.Overhead()
			sample.ProtoMsgs = o.MessagesPerNode
			sample.ProtoStore = o.StorageMeanBytes
			return sample, nil
		},
	}, func(out *runner.Outcome[compareSample]) (*CompareResult, error) {
		var (
			rmDetect, lsmDetect, rmMsgs, lsmMsgs   float64
			rmStore, lsmStore                      float64
			protoPrevent, protoMsgs, protoStoreSum float64
			centDetect, centMsgs, centBytes        float64
		)
		for _, sample := range out.Points[0] {
			if sample.RmDetect {
				rmDetect++
			}
			if sample.LsmDetect {
				lsmDetect++
			}
			rmMsgs += sample.RmMsgs
			lsmMsgs += sample.LsmMsgs
			rmStore += sample.RmStore
			lsmStore += sample.LsmStore
			if sample.CentDetect {
				centDetect++
			}
			centMsgs += sample.CentMsgs
			centBytes += sample.CentBytes
			if sample.ProtoPrevent {
				protoPrevent++
			}
			protoMsgs += sample.ProtoMsgs
			protoStoreSum += sample.ProtoStore
		}
		n := float64(len(out.Points[0]))
		return &CompareResult{Rows: []CompareRow{
			{
				Scheme: "no defense", Defense: 0, Mode: "detection",
				MsgsPerNode: 0, StoragePerNode: 0, StorageUnit: "claims", NeedsLocation: false,
			},
			{
				Scheme: "randomized multicast", Defense: rmDetect / n, Mode: "detection",
				MsgsPerNode: rmMsgs / n, StoragePerNode: rmStore / n, StorageUnit: "claims",
				NeedsLocation: true,
			},
			{
				Scheme: "line-selected multicast", Defense: lsmDetect / n, Mode: "detection",
				MsgsPerNode: lsmMsgs / n, StoragePerNode: lsmStore / n, StorageUnit: "claims",
				NeedsLocation: true,
			},
			{
				Scheme: "centralized (base station)", Defense: centDetect / n, Mode: "detection",
				MsgsPerNode: centMsgs / n, StoragePerNode: centBytes / n, StorageUnit: "B relayed",
				NeedsLocation: false,
			},
			{
				Scheme: "snd protocol (this paper)", Defense: protoPrevent / n, Mode: "prevention",
				MsgsPerNode: protoMsgs / n, StoragePerNode: protoStoreSum / n, StorageUnit: "bytes",
				NeedsLocation: false,
			},
		}}, nil
	})
}

// HostileParams configures E10: a non-jamming active attacker flooding
// forged protocol traffic.
type HostileParams struct {
	Nodes      int
	FieldSide  float64
	Range      float64
	Threshold  int
	FloodCount int
	Trials     int
	Seed       int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *HostileParams) applyDefaults() {
	mergeDefaults(p, HostileParams{
		Nodes: 150, FieldSide: 100, Range: 50, FloodCount: 500, Trials: 5,
	})
}

// HostileResult compares accuracy before and after the forged-traffic
// flood.
type HostileResult struct {
	AccuracyBefore  float64
	AccuracyAfter   float64
	ForgedRejected  int
	FloodsDelivered int
	HealthReport
}

// Render formats the result.
func (r *HostileResult) Render() string {
	return fmt.Sprintf(
		"== Hostile (non-jamming) attacker — Section 4.4.2 ==\n"+
			"accuracy before flood: %.4f\naccuracy after  flood: %.4f\n"+
			"forged messages rejected: %d\n",
		r.AccuracyBefore, r.AccuracyAfter, r.ForgedRejected)
}

// hostileSample is one forged-flood trial.
type hostileSample struct {
	Before   float64
	After    float64
	Rejected int
}

// Hostile runs E10: a replica floods forged records, commitments and
// garbage at its neighborhood; benign accuracy must not move.
func Hostile(ctx context.Context, p HostileParams) (*HostileResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[hostileSample]{
		Name: "hostile", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (hostileSample, error) {
			var sample hostileSample
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: p.Seed + int64(trial),
			})
			if err != nil {
				return sample, err
			}
			defer s.Close()
			sample.Before = s.Accuracy()
			victim := s.Layout().ClosestToCenter()
			if err := s.Compromise(victim.Node); err != nil {
				return sample, err
			}
			rep, err := s.PlantReplica(victim.Node, geometry.Point{X: 20, Y: 20})
			if err != nil {
				return sample, err
			}
			if err := s.ForgeFlood(rep.Handle, p.FloodCount); err != nil {
				return sample, err
			}
			sample.After = s.Accuracy()
			sample.Rejected = s.ProtocolErrors()
			return sample, nil
		},
	}, func(out *runner.Outcome[hostileSample]) (*HostileResult, error) {
		res := &HostileResult{}
		var before, after float64
		rejected := 0
		for _, sample := range out.Points[0] {
			before += sample.Before
			after += sample.After
			rejected += sample.Rejected
		}
		n := float64(len(out.Points[0]))
		res.AccuracyBefore = before / n
		res.AccuracyAfter = after / n
		res.ForgedRejected = rejected
		return res, nil
	})
}

// OverheadParams configures E7: protocol overhead against network size.
type OverheadParams struct {
	FieldSide float64
	Range     float64
	Threshold int
	Sizes     []int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *OverheadParams) applyDefaults() {
	mergeDefaults(p, OverheadParams{
		FieldSide: 100, Range: 50, Threshold: 10, Sizes: []int{100, 200, 300, 400},
	})
}

// OverheadResult reports per-node overhead curves.
type OverheadResult struct {
	Messages stats.Series
	Bytes    stats.Series
	HashOps  stats.Series
	Storage  stats.Series
	HealthReport
}

// Table renders the result.
func (r *OverheadResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Section 4.3 — per-node protocol overhead vs network size",
		XLabel:  "nodes",
		Series:  []*stats.Series{&r.Messages, &r.Bytes, &r.HashOps, &r.Storage},
		Comment: "single deployment round; 100x100 m field, R = 50 m",
	}
}

// Render formats the table for terminal output.
func (r *OverheadResult) Render() string { return r.Table().Render() }

// overheadSample is one network size's overhead measurement.
type overheadSample struct {
	Messages float64
	Bytes    float64
	HashOps  float64
	Storage  float64
}

// OverheadSweep runs E7 across network sizes, one point per size.
func OverheadSweep(ctx context.Context, p OverheadParams) (*OverheadResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[overheadSample]{
		Name: "overhead", Params: p, Points: len(p.Sizes), Trials: 1,
		Trial: func(point, _ int) (overheadSample, error) {
			n := p.Sizes[point]
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: n, Threshold: p.Threshold, Seed: p.Seed + int64(n),
			})
			if err != nil {
				return overheadSample{}, err
			}
			defer s.Close()
			o := s.Overhead()
			return overheadSample{
				Messages: o.MessagesPerNode,
				Bytes:    o.BytesPerNode,
				HashOps:  o.HashOpsPerNode,
				Storage:  o.StorageMeanBytes,
			}, nil
		},
	}, func(out *runner.Outcome[overheadSample]) (*OverheadResult, error) {
		res := &OverheadResult{
			Messages: stats.Series{Name: "msgs/node"},
			Bytes:    stats.Series{Name: "bytes/node"},
			HashOps:  stats.Series{Name: "hash ops/node"},
			Storage:  stats.Series{Name: "storage bytes/node"},
		}
		for i, n := range p.Sizes {
			for _, sample := range out.Points[i] {
				res.Messages.Append(float64(n), sample.Messages, 0)
				res.Bytes.Append(float64(n), sample.Bytes, 0)
				res.HashOps.Append(float64(n), sample.HashOps, 0)
				res.Storage.Append(float64(n), sample.Storage, 0)
			}
		}
		return res, nil
	})
}
