package exp

import (
	"context"
	"errors"
	"fmt"

	"snd/internal/runner"
)

// RunCells executes specific cells of one of an experiment's sweeps — the
// worker half of distributed sweep execution. The caller supplies what a
// dist lease carries: the registry experiment name, the sweep's canonical
// params document, the content-addressed sweep ID, and the cells to run.
// The experiment is decoded through the registry's strict decoder and run
// under a harvest context, so the engine executes exactly the requested
// cells (consulting and filling eng's trial cache) and unwinds before any
// reduction. Samples come back bit-identical to what the coordinator would
// compute locally, because trials are pure functions of (params, point,
// trial).
//
// A sweep-identity mismatch — the decoded params hash differently than
// sweepID — is an error, not a silent divergence.
func RunCells(ctx context.Context, eng *runner.Engine, experiment string,
	params []byte, sweepID string, cells []runner.Cell) ([]runner.CellSample, error) {
	e, ok := Lookup(experiment)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", experiment)
	}
	bound, err := e.Decode(params)
	if err != nil {
		return nil, fmt.Errorf("exp: %s cell params: %w", experiment, err)
	}
	h := runner.NewHarvest(sweepID, cells)
	_, err = bound.Run(runner.WithHarvest(ctx, h), eng)
	switch {
	case errors.Is(err, runner.ErrHarvested):
		return h.Samples(), nil
	case err != nil:
		return nil, err
	default:
		// The run completed without ever reaching the target sweep — the
		// lease references a sweep this experiment does not execute.
		return nil, fmt.Errorf("exp: %s ran no sweep matching %s", experiment, sweepID)
	}
}
