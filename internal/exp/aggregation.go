package exp

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"snd/internal/cluster"
	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/topology"
)

// AggregationParams configures E14: cluster-based data aggregation under a
// replication attack — the paper's introduction warns that with wrong
// neighbor views "many sensor nodes far from each other may be included in
// the same cluster … and some data aggregation (e.g., average in a
// particular area) may generate incorrect results."
type AggregationParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	Trials    int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *AggregationParams) applyDefaults() {
	mergeDefaults(p, AggregationParams{
		Nodes: 300, FieldSide: 100, Range: 25, Threshold: 4, Trials: 5,
	})
}

// AggregationRow summarizes aggregation quality over one neighbor-table
// source.
type AggregationRow struct {
	Table string
	// MeanError and MaxError are node-level |cluster average − local
	// truth| in field units.
	MeanError float64
	MaxError  float64
	// WorstSpan is the largest member-to-member distance within any
	// cluster — the paper's "far from each other in the same cluster".
	WorstSpan float64
}

// AggregationResult compares aggregation over tentative vs functional
// clustering.
type AggregationResult struct {
	Rows []AggregationRow
	HealthReport
}

// Render formats the comparison.
func (r *AggregationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Cluster aggregation under a replication attack (intro, quantified) ==\n")
	fmt.Fprintf(&b, "sensed field: f(pos) = pos.X; lowest-ID clustering; errors in field units\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %14s\n", "neighbor table", "mean error", "max error", "worst span (m)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %12.2f %12.2f %14.1f\n", row.Table, row.MeanError, row.MaxError, row.WorstSpan)
	}
	return b.String()
}

// Aggregation runs E14: every node senses a smooth spatial field
// (f = x-coordinate); clusters form by lowest-ID election; each cluster
// computes the average of its members' readings; a node's aggregation
// error is the difference between its cluster's average and its own local
// truth. A low-ID compromised node replicated across the field drags far
// regions into one cluster over the tentative topology, corrupting the
// averages; the functional topology keeps clusters local.
func Aggregation(ctx context.Context, p AggregationParams) (*AggregationResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[aggregationSample]{
		Name: "aggregation", Params: p, Points: 1, Trials: p.Trials,
		Trial: func(_, trial int) (aggregationSample, error) {
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: p.Seed + int64(trial),
			})
			if err != nil {
				return aggregationSample{}, err
			}
			defer s.Close()
			// Compromise the lowest ID — the node every naive neighborhood
			// elects — and clone it into the corners.
			victim := nodeid.ID(1)
			if err := s.Compromise(victim); err != nil {
				return aggregationSample{}, err
			}
			inset := p.Range / 4
			for _, c := range []geometry.Point{
				{X: inset, Y: inset}, {X: p.FieldSide - inset, Y: inset},
				{X: inset, Y: p.FieldSide - inset}, {X: p.FieldSide - inset, Y: p.FieldSide - inset},
			} {
				if _, err := s.PlantReplica(victim, c); err != nil {
					return aggregationSample{}, err
				}
			}
			if err := s.DeployRound(p.Nodes / 3); err != nil {
				return aggregationSample{}, err
			}

			pos := make(map[nodeid.ID]geometry.Point)
			for _, d := range s.Layout().Devices() {
				if !d.Replica && d.Alive {
					pos[d.Node] = d.Pos
				}
			}
			tables := map[string]*topology.Graph{
				"tentative (no validation)": s.Tentative(),
				"functional (this paper)":   s.FunctionalGraph(),
			}
			sample := aggregationSample{Tables: map[string]aggregationErrs{}}
			for name, table := range tables {
				assignment := cluster.LowestID(table)
				meanErr, maxErr, span, n := aggregationErrors(assignment, pos)
				sample.Tables[name] = aggregationErrs{
					MeanError: meanErr, MaxError: maxErr, WorstSpan: span, Nodes: n,
				}
			}
			return sample, nil
		},
	}, func(out *runner.Outcome[aggregationSample]) (*AggregationResult, error) {
		agg := map[string]*AggregationRow{
			"tentative (no validation)": {Table: "tentative (no validation)"},
			"functional (this paper)":   {Table: "functional (this paper)"},
		}
		for _, sample := range out.Points[0] {
			for name, errs := range sample.Tables {
				row := agg[name]
				row.MeanError += errs.MeanError
				row.MaxError = maxFloat(row.MaxError, errs.MaxError)
				row.WorstSpan = maxFloat(row.WorstSpan, errs.WorstSpan)
			}
		}
		res := &AggregationResult{}
		for _, name := range []string{"tentative (no validation)", "functional (this paper)"} {
			row := agg[name]
			row.MeanError /= float64(len(out.Points[0]))
			res.Rows = append(res.Rows, *row)
		}
		return res, nil
	})
}

// aggregationErrs is one table's error measurement within a trial.
type aggregationErrs struct {
	MeanError float64
	MaxError  float64
	WorstSpan float64
	Nodes     int
}

// aggregationSample is one attacked deployment's aggregation measurements.
type aggregationSample struct {
	Tables map[string]aggregationErrs
}

// aggregationErrors computes per-node |cluster mean − local truth| with
// the sensed field f(pos) = pos.X, plus the worst intra-cluster span.
// Nodes without a known position (compromised identities report through
// replicas and are excluded from truth) are skipped as reporters but their
// heads' clusters still aggregate the members that do report.
func aggregationErrors(a cluster.Assignment, pos map[nodeid.ID]geometry.Point) (meanErr, maxErr, worstSpan float64, n int) {
	// Accumulate in sorted node order: float sums depend on addition order,
	// and the experiment must be reproducible run to run.
	nodes := make([]nodeid.ID, 0, len(a))
	for node := range a {
		nodes = append(nodes, node)
	}
	slices.Sort(nodes)
	sum := make(map[nodeid.ID]float64)
	count := make(map[nodeid.ID]int)
	members := make(map[nodeid.ID][]nodeid.ID)
	for _, node := range nodes {
		head := a[node]
		p, ok := pos[node]
		if !ok {
			continue
		}
		sum[head] += p.X
		count[head]++
		members[head] = append(members[head], node)
	}
	var total float64
	for _, node := range nodes {
		head := a[node]
		p, ok := pos[node]
		if !ok || count[head] == 0 {
			continue
		}
		avg := sum[head] / float64(count[head])
		errv := avg - p.X
		if errv < 0 {
			errv = -errv
		}
		total += errv
		if errv > maxErr {
			maxErr = errv
		}
		n++
	}
	if n > 0 {
		meanErr = total / float64(n)
	}
	for _, ms := range members {
		for i := range ms {
			for j := i + 1; j < len(ms); j++ {
				if d := pos[ms[i]].Dist(pos[ms[j]]); d > worstSpan {
					worstSpan = d
				}
			}
		}
	}
	return meanErr, maxErr, worstSpan, n
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
