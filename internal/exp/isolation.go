package exp

import (
	"context"

	"snd/internal/geometry"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/stats"
	"snd/internal/topology"
)

// IsolationParams configures E12: the connectivity cost of the threshold.
// Section 3 of the paper observes that the functional topology Ḡ "may
// include multiple, separated partitions" and that "it is desirable to
// have a well-connected graph Ḡ … however, this often makes it expensive
// for us to protect the neighbor discovery." This experiment quantifies
// that trade-off: as t grows, validation prunes relations and nodes fall
// out of the useful (largest) partition.
type IsolationParams struct {
	Nodes      int
	FieldSide  float64
	Range      float64
	Thresholds []int
	Trials     int
	Seed       int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *IsolationParams) applyDefaults() {
	mergeDefaults(p, IsolationParams{
		Nodes: 200, FieldSide: 100, Range: 50,
		Thresholds: []int{0, 40, 80, 100, 120, 140, 150, 160}, Trials: 5,
	})
}

// IsolationResult reports partition structure against the threshold.
type IsolationResult struct {
	// IsolatedFraction is the share of nodes outside the largest
	// partition of the functional topology.
	IsolatedFraction stats.Series
	// Partitions is the mean number of weakly connected components.
	Partitions stats.Series
	// Accuracy is the usual relation-level accuracy, for reading both
	// costs off one table.
	Accuracy stats.Series
	HealthReport
}

// Table renders the result.
func (r *IsolationResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Functional topology connectivity vs threshold t (paper Section 3 trade-off)",
		XLabel:  "t",
		Series:  []*stats.Series{&r.IsolatedFraction, &r.Partitions, &r.Accuracy},
		Comment: "useful partition = largest weakly connected component of Ḡ",
	}
}

// Render formats the table for terminal output.
func (r *IsolationResult) Render() string { return r.Table().Render() }

// isolationSample is one deployment's partition measurement.
type isolationSample struct {
	IsolatedFraction float64
	Partitions       float64
	Accuracy         float64
}

// Isolation runs E12 over the paper's Figure 3 deployment.
func Isolation(ctx context.Context, p IsolationParams) (*IsolationResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[isolationSample]{
		Name: "isolation", Params: p, Points: len(p.Thresholds), Trials: p.Trials,
		Trial: func(point, trial int) (isolationSample, error) {
			t := p.Thresholds[point]
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: t, Seed: p.Seed + int64(t*100+trial),
			})
			if err != nil {
				return isolationSample{}, err
			}
			defer s.Close()
			functional := s.FunctionalGraph()
			isolated := functional.IsolatedNodes(topology.LargestOnly{})
			return isolationSample{
				IsolatedFraction: float64(len(isolated)) / float64(functional.NumNodes()),
				Partitions:       float64(len(functional.Partitions())),
				Accuracy:         s.Accuracy(),
			}, nil
		},
	}, func(out *runner.Outcome[isolationSample]) (*IsolationResult, error) {
		res := &IsolationResult{
			IsolatedFraction: stats.Series{Name: "isolated fraction"},
			Partitions:       stats.Series{Name: "partitions"},
			Accuracy:         stats.Series{Name: "accuracy"},
		}
		for i, t := range p.Thresholds {
			var isoFracs, partCounts, accs []float64
			for _, sample := range out.Points[i] {
				isoFracs = append(isoFracs, sample.IsolatedFraction)
				partCounts = append(partCounts, sample.Partitions)
				accs = append(accs, sample.Accuracy)
			}
			iso := stats.Summarize(isoFracs)
			res.IsolatedFraction.Append(float64(t), iso.Mean, iso.CI95())
			res.Partitions.Append(float64(t), stats.Mean(partCounts), 0)
			acc := stats.Summarize(accs)
			res.Accuracy.Append(float64(t), acc.Mean, acc.CI95())
		}
		return res, nil
	})
}
