package exp

import "reflect"

// mergeDefaults fills the unset fields of p from def: a field takes its
// default when it is the zero value, or an empty slice (so `"Xs":[]` means
// "use the default grid", matching the historical len()==0 checks). Set
// fields — including explicit zeros encoded as non-zero-able types — are
// left alone.
func mergeDefaults[P any](p *P, def P) {
	pv := reflect.ValueOf(p).Elem()
	dv := reflect.ValueOf(def)
	for i := 0; i < pv.NumField(); i++ {
		f := pv.Field(i)
		if !f.CanSet() {
			continue
		}
		if f.Kind() == reflect.Slice {
			if f.Len() == 0 {
				f.Set(dv.Field(i))
			}
			continue
		}
		if f.IsZero() {
			f.Set(dv.Field(i))
		}
	}
}

// seqInts returns lo, lo+step, ..., up to and including hi.
func seqInts(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}
