package exp

import (
	"context"
	"errors"
	"testing"

	"snd/internal/runner"
)

func TestHealthOfAndString(t *testing.T) {
	clean := healthOf(&runner.Outcome[int]{Dropped: []int{0, 0}})
	if clean.Degraded() || clean.String() != "healthy" {
		t.Errorf("clean outcome reported %q (degraded=%v)", clean, clean.Degraded())
	}

	hurt := healthOf(&runner.Outcome[int]{Failed: 3, Dropped: []int{0, 2, 0, 0, 1}})
	if !hurt.Degraded() || hurt.Dropped != 3 {
		t.Fatalf("degraded outcome reported %+v", hurt)
	}
	if got, want := hurt.String(), "3 trials dropped (point 1: 2, point 4: 1)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	one := healthOf(&runner.Outcome[int]{Failed: 1, Dropped: []int{1}})
	if got, want := one.String(), "1 trial dropped (point 0: 1)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Cancelling the context passed to a runner propagates out as the
// context's error; no partial result struct is fabricated.
func TestRunnerCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := runner.New(runner.Options{Workers: 1})
	res, err := Fig3(ctx, Fig3Params{Trials: 5, Seed: 1, Engine: eng})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("result = %+v, want nil on cancellation", res)
	}
}
