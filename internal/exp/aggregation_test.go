package exp

import (
	"context"
	"strings"
	"testing"
)

func TestAggregationAttackImpact(t *testing.T) {
	t.Parallel()
	res, err := Aggregation(context.Background(), AggregationParams{Trials: 3, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	tentative, functional := res.Rows[0], res.Rows[1]
	// The replicated low ID merges far regions into one cluster over the
	// tentative topology: its worst span approaches the field diagonal,
	// while the validated topology keeps clusters within ~2R.
	if tentative.WorstSpan <= functional.WorstSpan {
		t.Errorf("span: tentative %v vs functional %v — no merging observed",
			tentative.WorstSpan, functional.WorstSpan)
	}
	// Theorem 3 caps the functional span: the compromised head's benign
	// accepters fit in a circle of radius 2R, so members are ≤ 4R apart.
	if functional.WorstSpan > 4*25+5 {
		t.Errorf("functional cluster span %v exceeds the 4R bound", functional.WorstSpan)
	}
	// Over the tentative topology the replica-merged cluster spans the
	// field, far past what any containment bound would allow.
	if tentative.WorstSpan < 110 {
		t.Errorf("tentative cluster span %v; expected field-scale merging", tentative.WorstSpan)
	}
	// Aggregation error follows the same ordering.
	if tentative.MaxError <= functional.MaxError {
		t.Errorf("max error: tentative %v vs functional %v", tentative.MaxError, functional.MaxError)
	}
	if tentative.MeanError <= functional.MeanError {
		t.Errorf("mean error: tentative %v vs functional %v", tentative.MeanError, functional.MeanError)
	}
	if out := res.Render(); !strings.Contains(out, "aggregation") {
		t.Error("render missing title")
	}
}
