package exp

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestVerifierNoiseDegradesGracefully(t *testing.T) {
	t.Parallel()
	res, err := VerifierNoise(context.Background(), NoiseParams{Sigmas: []float64{0, 8}, Trials: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	clean, noisy := res.Accuracy.Y[0], res.Accuracy.Y[1]
	if clean < 0.95 {
		t.Errorf("noiseless accuracy %v, want ≈ 1", clean)
	}
	if noisy > clean+1e-9 {
		t.Errorf("noise increased accuracy: %v -> %v", clean, noisy)
	}
	// Asymmetric verification shows up as rejected records.
	if res.Rejected.Y[0] != 0 {
		t.Errorf("rejections without noise: %v", res.Rejected.Y[0])
	}
	if res.Rejected.Y[1] == 0 {
		t.Error("no rejections at sigma=8; noise not reaching the protocol")
	}
	if out := res.Table().Render(); !strings.Contains(out, "RTT") {
		t.Error("render missing title")
	}
}

func TestSchemeAblationCoverageGatesAccuracy(t *testing.T) {
	t.Parallel()
	res, err := SchemeAblation(context.Background(), SchemeParams{RingSizes: []int{20, 200}, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Bigger rings cover more pairs and lose fewer exchanges.
	if res.Coverage.Y[1] <= res.Coverage.Y[0] {
		t.Errorf("coverage did not grow with ring size: %v", res.Coverage.Y)
	}
	if res.Failures.Y[1] >= res.Failures.Y[0] {
		t.Errorf("channel failures did not drop with ring size: %v", res.Failures.Y)
	}
	if res.Accuracy.Y[1] < res.Accuracy.Y[0]-1e-9 {
		t.Errorf("accuracy dropped with better coverage: %v", res.Accuracy.Y)
	}
	if out := res.Table().Render(); !strings.Contains(out, "ring size") {
		t.Error("render missing title")
	}
}

func TestEnginesAgree(t *testing.T) {
	t.Parallel()
	res, err := Engines(context.Background(), EnginesParams{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	// Same positions, same threshold, lossless medium: the functional
	// topology — and hence accuracy — must match exactly.
	if math.Abs(res.SyncAccuracy-res.AsyncAccuracy) > 1e-9 {
		t.Errorf("engines disagree: sync %v vs async %v", res.SyncAccuracy, res.AsyncAccuracy)
	}
	if res.SyncMessages == 0 || res.AsyncMessages == 0 {
		t.Error("an engine sent no frames")
	}
	if out := res.Render(); !strings.Contains(out, "goroutine-per-node") {
		t.Error("render missing title")
	}
}
