package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"snd/internal/runner"
)

// captureBackend records the sweep it is offered and executes it locally,
// so a test can learn the exact SweepDesc a coordinator would lease out.
type captureBackend struct {
	desc runner.SweepDesc
}

func (b *captureBackend) RunSweep(ctx context.Context, desc runner.SweepDesc,
	run func(runner.Cell) bool, deliver func(runner.Cell, []byte) bool) error {
	b.desc = desc
	for p := 0; p < desc.Points; p++ {
		for t := 0; t < desc.Trials; t++ {
			if !run(runner.Cell{Point: p, Trial: t}) {
				return nil
			}
		}
	}
	return nil
}

// replayBackend delivers pre-computed samples instead of executing
// anything — the coordinator's view of a sweep completed entirely by
// remote workers.
type replayBackend struct {
	samples map[runner.Cell]json.RawMessage
}

func (b *replayBackend) RunSweep(ctx context.Context, desc runner.SweepDesc,
	run func(runner.Cell) bool, deliver func(runner.Cell, []byte) bool) error {
	for p := 0; p < desc.Points; p++ {
		for t := 0; t < desc.Trials; t++ {
			c := runner.Cell{Point: p, Trial: t}
			deliver(c, b.samples[c])
		}
	}
	return nil
}

func runFig3JSON(t *testing.T, eng *runner.Engine) []byte {
	t.Helper()
	e, _ := Lookup("fig3")
	bound, err := e.Decode(json.RawMessage(`{"Trials":4,"Seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := bound.Run(context.Background(), eng)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// The full distributed round trip over a real paper experiment: capture
// the sweep a coordinator would lease, execute its cells in a separate
// "process" (fresh engine) via RunCells, feed the samples back through the
// deliver path, and demand the final result be byte-identical to a plain
// local run.
func TestRunCellsRoundTripBitIdentical(t *testing.T) {
	t.Parallel()
	local := runFig3JSON(t, runner.New(runner.Options{Workers: 2}))

	capture := &captureBackend{}
	viaRun := runFig3JSON(t, runner.New(runner.Options{Workers: 2, Backend: capture}))
	if !bytes.Equal(viaRun, local) {
		t.Fatalf("backend run path diverges from local:\n%s\nvs\n%s", viaRun, local)
	}
	desc := capture.desc
	if desc.ID == "" || desc.Experiment != "fig3" {
		t.Fatalf("captured desc %+v, want a fig3 sweep", desc)
	}

	// Worker side: same lease, fresh engine, registry-derived trials.
	var cells []runner.Cell
	for p := 0; p < desc.Points; p++ {
		for tr := 0; tr < desc.Trials; tr++ {
			cells = append(cells, runner.Cell{Point: p, Trial: tr})
		}
	}
	weng := runner.New(runner.Options{Workers: 2, Cache: runner.NewMemoryCache()})
	samples, err := RunCells(context.Background(), weng, desc.Experiment, desc.Params, desc.ID, cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(cells) {
		t.Fatalf("%d samples for %d cells", len(samples), len(cells))
	}
	byCell := make(map[runner.Cell]json.RawMessage, len(samples))
	for _, s := range samples {
		if s.Dropped {
			t.Fatalf("cell %v dropped", s.Cell)
		}
		byCell[s.Cell] = s.Sample
	}

	// Coordinator side: a run fed purely by the worker's samples.
	replayed := runFig3JSON(t, runner.New(runner.Options{Workers: 2, Backend: &replayBackend{samples: byCell}}))
	if !bytes.Equal(replayed, local) {
		t.Fatalf("remotely computed result diverges from local:\n%s\nvs\n%s", replayed, local)
	}
}

// Re-running the same cells in another process must reproduce the exact
// sample bytes — the property every failover path leans on.
func TestRunCellsDeterministicAcrossEngines(t *testing.T) {
	t.Parallel()
	capture := &captureBackend{}
	runFig3JSON(t, runner.New(runner.Options{Workers: 2, Backend: capture}))
	desc := capture.desc
	cells := []runner.Cell{
		{Point: 0, Trial: 0},
		{Point: desc.Points - 1, Trial: desc.Trials - 1},
		{Point: 0, Trial: 1},
	}

	a, err := RunCells(context.Background(), runner.New(runner.Options{Workers: 2}), desc.Experiment, desc.Params, desc.ID, cells)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCells(context.Background(), runner.New(runner.Options{Workers: 1}), desc.Experiment, desc.Params, desc.ID, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Cell != b[i].Cell || !bytes.Equal(a[i].Sample, b[i].Sample) {
			t.Fatalf("cell %v samples differ across engines:\n%s\nvs\n%s", a[i].Cell, a[i].Sample, b[i].Sample)
		}
	}
}

// Typed failures: unknown experiments, undecodable params, and a sweep
// identity mismatch must all refuse loudly.
func TestRunCellsRejectsBadLeases(t *testing.T) {
	t.Parallel()
	eng := runner.New(runner.Options{Workers: 1})
	cells := []runner.Cell{{Point: 0, Trial: 0}}

	if _, err := RunCells(context.Background(), eng, "nope", nil, "x", cells); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: err = %v", err)
	}
	if _, err := RunCells(context.Background(), eng, "fig3", json.RawMessage(`{"Bogus":1}`), "x", cells); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := RunCells(context.Background(), eng, "fig3", json.RawMessage(`{"Trials":4,"Seed":7}`), "not-the-sweep", cells); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("sweep mismatch: err = %v", err)
	}
}
