package exp

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite the golden Render() files")

// goldenConfigs pins every experiment to a tiny fixed-seed configuration.
// The recorded outputs were generated before the registry refactor, so a
// byte-level match proves the refactor did not move any measured number.
var goldenConfigs = map[string]string{
	"fig3":          `{"Nodes":100,"Trials":3,"Seed":11}`,
	"fig4":          `{"Densities":[10,20],"Trials":2,"Seed":12}`,
	"safety":        `{"Nodes":120,"CompromiseCounts":[1,2],"Trials":2,"Seed":13}`,
	"breakdown":     `{"Threshold":4,"CliqueSizes":[5,6],"Trials":2,"Seed":4}`,
	"impossibility": `{"Nodes":200,"Trials":2,"Seed":5}`,
	"overhead":      `{"Sizes":[60,100],"Seed":8}`,
	"compare":       `{"Nodes":100,"Trials":2,"Seed":14}`,
	"update":        `{"Nodes":120,"UpdateBudgets":[0,2],"Waves":2,"Trials":1,"Seed":9}`,
	"hostile":       `{"Nodes":100,"FloodCount":100,"Trials":1,"Seed":7}`,
	"routing":       `{"Nodes":150,"Pairs":20,"Trials":1,"Seed":16}`,
	"aggregation":   `{"Nodes":150,"Trials":1,"Seed":17}`,
	"isolation":     `{"Nodes":100,"Thresholds":[0,80],"Trials":2,"Seed":15}`,
	"noise":         `{"Nodes":100,"Sigmas":[0,4],"Trials":1,"Seed":18}`,
	"scheme":        `{"Nodes":100,"RingSizes":[40,120],"Seed":19}`,
	"engines":       `{"Nodes":80,"Seed":20}`,
	"scale":         `{"Nodes":20000,"Samples":500,"Trials":2,"Seed":21}`,
}

// TestGoldenRender runs every registered experiment through the registry —
// decode, run, Render — and compares against the recorded output. Every
// registered name must have a config, so adding an experiment without a
// golden fails here.
func TestGoldenRender(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweeps are slow")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			raw, ok := goldenConfigs[name]
			if !ok {
				t.Fatalf("experiment %q has no golden config; add one (and a golden file) here", name)
			}
			e, ok := Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) failed", name)
			}
			bound, err := e.Decode(json.RawMessage(raw))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			res, err := bound.Run(context.Background(), nil)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := res.Render()
			path := filepath.Join("testdata", "golden", name+".txt")
			if *updateGoldens {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Errorf("Render() drifted from golden %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
			}
		})
	}
}
