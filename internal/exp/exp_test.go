package exp

import (
	"context"
	"math"
	"strings"
	"testing"
)

// The experiment runners are exercised with reduced trial counts; the
// assertions pin the qualitative shapes the paper reports, which is what
// the reproduction is accountable for.

func TestFig3ShapeMatchesPaper(t *testing.T) {
	t.Parallel()
	res, err := Fig3(context.Background(), Fig3Params{Trials: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Theory.Len() != res.Simulation.Len() || res.Theory.Len() == 0 {
		t.Fatalf("series lengths %d vs %d", res.Theory.Len(), res.Simulation.Len())
	}
	for i := range res.Theory.X {
		theory, simv := res.Theory.Y[i], res.Simulation.Y[i]
		if math.Abs(theory-simv) > 0.2 {
			t.Errorf("t=%v: theory %.3f vs sim %.3f diverge", res.Theory.X[i], theory, simv)
		}
		if simv < 0 || simv > 1 {
			t.Fatalf("simulated fraction %v out of range", simv)
		}
	}
	// Key qualitative claims: high accuracy at t=30, low at t=150.
	at := func(s []float64, xs []float64, x float64) float64 {
		for i := range xs {
			if xs[i] == x {
				return s[i]
			}
		}
		t.Fatalf("x=%v missing", x)
		return 0
	}
	if v := at(res.Simulation.Y, res.Simulation.X, 30); v < 0.8 {
		t.Errorf("sim accuracy at t=30 is %v, paper reports high", v)
	}
	if v := at(res.Simulation.Y, res.Simulation.X, 150); v > 0.25 {
		t.Errorf("sim accuracy at t=150 is %v, paper reports low", v)
	}
	// Monotone non-increasing within noise.
	prev := 1.1
	for _, v := range res.Simulation.Y {
		if v > prev+0.05 {
			t.Errorf("simulated curve increased: %v after %v", v, prev)
		}
		prev = v
	}
	if out := res.Table().Render(); !strings.Contains(out, "Figure 3") {
		t.Error("table render missing title")
	}
}

func TestFig4DensityIncreasesAccuracy(t *testing.T) {
	t.Parallel()
	res, err := Fig4(context.Background(), Fig4Params{Trials: 8, Seed: 2, Densities: []float64{10, 20, 30, 40, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		prev := -0.1
		for i, v := range c.Y {
			if v < prev-0.08 {
				t.Errorf("%s: accuracy dropped from %v to %v at density %v", c.Name, prev, v, c.X[i])
			}
			prev = v
		}
	}
	// At any density, larger t means lower (or equal) accuracy.
	for i := range res.Curves[0].Y {
		if res.Curves[0].Y[i]+0.05 < res.Curves[2].Y[i] {
			t.Errorf("t=10 below t=50 at density %v", res.Curves[0].X[i])
		}
	}
	if out := res.Table().Render(); !strings.Contains(out, "Figure 4") {
		t.Error("table render missing title")
	}
}

func TestSafetyNoViolationsUnderThreshold(t *testing.T) {
	t.Parallel()
	res, err := Safety(context.Background(), SafetyParams{
		Trials:           3,
		CompromiseCounts: []int{1, 3},
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range res.ViolationRate.Y {
		if rate != 0 {
			t.Errorf("violation rate %v at %v compromised (≤ t)", rate, res.ViolationRate.X[i])
		}
	}
	for i, w := range res.WorstEnclosing.Y {
		if w > res.Bound {
			t.Errorf("worst enclosing radius %v exceeds bound %v at count %v", w, res.Bound, res.WorstEnclosing.X[i])
		}
	}
}

func TestBreakdownTransitionAtThreshold(t *testing.T) {
	t.Parallel()
	const threshold = 4
	res, err := Breakdown(context.Background(), BreakdownParams{
		Threshold:   threshold,
		CliqueSizes: []int{threshold + 1, threshold + 2},
		Trials:      4,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// k = t+1: protected. k = t+2: broken in most trials.
	if res.ViolationRate.Y[0] != 0 {
		t.Errorf("violations at k=t+1: %v", res.ViolationRate.Y[0])
	}
	if res.ViolationRate.Y[1] < 0.5 {
		t.Errorf("violation rate at k=t+2 is %v, want majority", res.ViolationRate.Y[1])
	}
}

func TestImpossibilityContrast(t *testing.T) {
	t.Parallel()
	res, err := Impossibility(context.Background(), ImpossibilityParams{Trials: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopologyOnlySuccess < 0.8 {
		t.Errorf("substitution attack success %v against topology-only rule, want ≈ 1", res.TopologyOnlySuccess)
	}
	if res.TopologyOnlyReach <= res.Bound {
		t.Errorf("fooled reach %v not beyond bound %v", res.TopologyOnlyReach, res.Bound)
	}
	if res.ProtocolSuccess != 0 {
		t.Errorf("paper protocol broken in %v of trials with 1 compromised node", res.ProtocolSuccess)
	}
	if out := res.Render(); !strings.Contains(out, "Theorems 1-2") {
		t.Error("render missing title")
	}
}

func TestCompareTable(t *testing.T) {
	t.Parallel()
	res, err := Compare(context.Background(), CompareParams{Trials: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]CompareRow{}
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	snd := byName["snd protocol (this paper)"]
	if snd.Defense < 0.99 {
		t.Errorf("protocol prevention rate %v, want 1", snd.Defense)
	}
	if snd.NeedsLocation {
		t.Error("protocol marked as needing location")
	}
	rm := byName["randomized multicast"]
	lsm := byName["line-selected multicast"]
	if !rm.NeedsLocation || !lsm.NeedsLocation {
		t.Error("baselines not marked as needing location")
	}
	if rm.Defense == 0 && lsm.Defense == 0 {
		t.Error("baselines detected nothing; configuration broken")
	}
	if out := res.Render(); !strings.Contains(out, "Parno") {
		t.Error("render missing title")
	}
}

func TestCompareScaling(t *testing.T) {
	t.Parallel()
	// The paper's communication claim is about scaling: the protocol only
	// talks to neighbors (per-node cost set by density, independent of
	// network size), while the baselines multicast claims across the whole
	// network (per-node cost grows with n). Double the field area and node
	// count at constant density and compare growth.
	small, err := Compare(context.Background(), CompareParams{Nodes: 100, FieldSide: 100, Trials: 3, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Compare(context.Background(), CompareParams{Nodes: 400, FieldSide: 200, Trials: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	row := func(r *CompareResult, name string) CompareRow {
		for _, row := range r.Rows {
			if row.Scheme == name {
				return row
			}
		}
		t.Fatalf("row %q missing", name)
		return CompareRow{}
	}
	const snd = "snd protocol (this paper)"
	const rm = "randomized multicast"
	sndGrowth := row(large, snd).MsgsPerNode / row(small, snd).MsgsPerNode
	rmGrowth := row(large, rm).MsgsPerNode / row(small, rm).MsgsPerNode
	if sndGrowth > 1.5 {
		t.Errorf("protocol msgs/node grew %.2fx with network size at fixed density", sndGrowth)
	}
	if rmGrowth < sndGrowth*1.5 {
		t.Errorf("randomized multicast growth %.2fx not clearly above protocol's %.2fx", rmGrowth, sndGrowth)
	}
}

func TestHostileAccuracyUnmoved(t *testing.T) {
	t.Parallel()
	res, err := Hostile(context.Background(), HostileParams{Trials: 2, FloodCount: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.AccuracyAfter < res.AccuracyBefore-1e-9 {
		t.Errorf("flood reduced accuracy: %v -> %v", res.AccuracyBefore, res.AccuracyAfter)
	}
	if res.ForgedRejected == 0 {
		t.Error("no forged messages rejected")
	}
	if out := res.Render(); !strings.Contains(out, "Hostile") {
		t.Error("render missing title")
	}
}

func TestOverheadSweepGrowsWithDensity(t *testing.T) {
	t.Parallel()
	res, err := OverheadSweep(context.Background(), OverheadParams{Sizes: []int{100, 300}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Denser networks mean more neighbors, hence more records exchanged
	// per node.
	if res.Messages.Y[1] <= res.Messages.Y[0] {
		t.Errorf("msgs/node did not grow with density: %v", res.Messages.Y)
	}
	if res.Storage.Y[1] <= res.Storage.Y[0] {
		t.Errorf("storage/node did not grow with density: %v", res.Storage.Y)
	}
	if out := res.Table().Render(); !strings.Contains(out, "overhead") {
		t.Error("render missing title")
	}
}

func TestUpdateExperiment(t *testing.T) {
	t.Parallel()
	res, err := Update(context.Background(), UpdateParams{UpdateBudgets: []int{0, 2}, Trials: 2, Waves: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4: reach within (m+1)R at every budget.
	for i := range res.MaxReach.Y {
		if res.MaxReach.Y[i] > res.TheoremBound.Y[i] {
			t.Errorf("m=%v: reach %v exceeds bound %v", res.MaxReach.X[i], res.MaxReach.Y[i], res.TheoremBound.Y[i])
		}
	}
	// Updates should not hurt accuracy.
	if res.Accuracy.Y[1] < res.Accuracy.Y[0]-0.02 {
		t.Errorf("updates reduced accuracy: %v", res.Accuracy.Y)
	}
}
