package exp

import (
	"context"

	"snd/internal/runner"
)

// init registers every experiment of the reproduction. Registration order
// is the order `sndfig -all` runs them; the catalog and -list views sort
// by name. To add an experiment: write a params struct (with
// applyDefaults), one trial function, one reducer, call runGrid, and
// register the triple here — all three binaries pick it up.
func init() {
	Register("fig3", "Figure 3: validated-neighbor fraction vs threshold t, theory and simulation",
		func(ctx context.Context, eng *runner.Engine, p Fig3Params) (*Fig3Result, error) {
			p.Engine = eng
			return Fig3(ctx, p)
		})
	Register("fig4", "Figure 4: validated-neighbor fraction vs deployment density for t in {10,30,50}",
		func(ctx context.Context, eng *runner.Engine, p Fig4Params) (*Fig4Result, error) {
			p.Engine = eng
			return Fig4(ctx, p)
		})
	Register("safety", "Theorem 3 audit (E3): 2R-safety with at most t compromised nodes replicated at the corners",
		func(ctx context.Context, eng *runner.Engine, p SafetyParams) (*SafetyResult, error) {
			p.Engine = eng
			return Safety(ctx, p)
		})
	Register("breakdown", "Threshold breakdown (E4): clone-clique attack vs clique size, guarantee tight at k = t+2",
		func(ctx context.Context, eng *runner.Engine, p BreakdownParams) (*BreakdownResult, error) {
			p.Engine = eng
			return Breakdown(ctx, p)
		})
	Register("impossibility", "Theorems 1-2 (E5): substitution attack beats topology-only validation, not the protocol",
		func(ctx context.Context, eng *runner.Engine, p ImpossibilityParams) (*ImpossibilityResult, error) {
			p.Engine = eng
			return Impossibility(ctx, p)
		})
	Register("overhead", "Section 4.3 (E7): per-node message/byte/hash/storage overhead vs network size",
		func(ctx context.Context, eng *runner.Engine, p OverheadParams) (*OverheadResult, error) {
			p.Engine = eng
			return OverheadSweep(ctx, p)
		})
	Register("compare", "Section 4.5 (E8): replication-attack defense and overhead vs Parno et al. baselines",
		func(ctx context.Context, eng *runner.Engine, p CompareParams) (*CompareResult, error) {
			p.Engine = eng
			return Compare(ctx, p)
		})
	Register("update", "Update extension (E9): aging-network accuracy and the (m+1)R bound of Theorem 4",
		func(ctx context.Context, eng *runner.Engine, p UpdateParams) (*UpdateResult, error) {
			p.Engine = eng
			return Update(ctx, p)
		})
	Register("hostile", "Section 4.4.2 (E10): forged-traffic flood from a replica must not move benign accuracy",
		func(ctx context.Context, eng *runner.Engine, p HostileParams) (*HostileResult, error) {
			p.Engine = eng
			return Hostile(ctx, p)
		})
	Register("routing", "Introduction, quantified (E11): GPSR blackhole impact of a replication attack",
		func(ctx context.Context, eng *runner.Engine, p RoutingParams) (*RoutingResult, error) {
			p.Engine = eng
			return Routing(ctx, p)
		})
	Register("aggregation", "Introduction, quantified (E14): cluster-aggregation error under a replication attack",
		func(ctx context.Context, eng *runner.Engine, p AggregationParams) (*AggregationResult, error) {
			p.Engine = eng
			return Aggregation(ctx, p)
		})
	Register("isolation", "Section 3 trade-off (E12): functional-topology partitions and isolation vs threshold t",
		func(ctx context.Context, eng *runner.Engine, p IsolationParams) (*IsolationResult, error) {
			p.Engine = eng
			return Isolation(ctx, p)
		})
	Register("noise", "Ablation: RTT direct-verifier Gaussian noise vs protocol accuracy and rejected records",
		func(ctx context.Context, eng *runner.Engine, p NoiseParams) (*NoiseResult, error) {
			p.Engine = eng
			return VerifierNoise(ctx, p)
		})
	Register("scheme", "Ablation: Eschenauer-Gligor key ring size vs key coverage and protocol accuracy",
		func(ctx context.Context, eng *runner.Engine, p SchemeParams) (*SchemeResult, error) {
			p.Engine = eng
			return SchemeAblation(ctx, p)
		})
	Register("engines", "Ablation: deterministic engine vs goroutine-per-node engine over one deployment",
		func(ctx context.Context, eng *runner.Engine, p EnginesParams) (*EnginesResult, error) {
			p.Engine = eng
			return Engines(ctx, p)
		})
	Register("scale", "Scale (E1 at n=10^6): sampled validated-neighbor fraction vs threshold on the CSR topology",
		func(ctx context.Context, eng *runner.Engine, p ScaleParams) (*ScaleResult, error) {
			p.Engine = eng
			return Scale(ctx, p)
		})
}
