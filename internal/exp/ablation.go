package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"snd/internal/async"
	"snd/internal/crypto"
	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/radio"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/stats"
	"snd/internal/topology"
	"snd/internal/verify"
)

// NoiseParams configures the direct-verifier noise ablation: how accuracy
// degrades when the substrate the paper treats as perfect (references
// [8]–[10], [15]) makes boundary errors.
type NoiseParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	// Sigmas is the sweep of RTT distance-error standard deviations (m).
	Sigmas []float64
	Trials int
	Seed   int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *NoiseParams) applyDefaults() {
	mergeDefaults(p, NoiseParams{
		Nodes: 200, FieldSide: 100, Range: 50, Threshold: 30,
		Sigmas: []float64{0, 1, 2, 5, 10}, Trials: 5,
	})
}

// NoiseResult reports accuracy and rejected-record counts per noise level.
type NoiseResult struct {
	Accuracy stats.Series
	Rejected stats.Series
	HealthReport
}

// Table renders the result.
func (r *NoiseResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Ablation — RTT direct-verifier noise vs protocol accuracy",
		XLabel:  "sigma (m)",
		Series:  []*stats.Series{&r.Accuracy, &r.Rejected},
		Comment: "asymmetric verification errors surface as rejected binding records",
	}
}

// Render formats the table for terminal output.
func (r *NoiseResult) Render() string { return r.Table().Render() }

// VerifierNoise runs the ablation: the protocol over an RTT verifier whose
// distance estimates carry Gaussian error. Boundary errors make tentative
// relations asymmetric, which the protocol surfaces as rejected records
// (ErrNotTentative) and slightly reduced accuracy.
func VerifierNoise(ctx context.Context, p NoiseParams) (*NoiseResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[noiseSample]{
		Name: "ablation-noise", Params: p, Points: len(p.Sigmas), Trials: p.Trials,
		Trial: func(point, trial int) (noiseSample, error) {
			sigma := p.Sigmas[point]
			seed := p.Seed + int64(sigma*100) + int64(trial)
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: seed,
				Verifier: &verify.RTT{NoiseStd: sigma, Rng: rand.New(rand.NewSource(seed + 7))},
			})
			if err != nil {
				return noiseSample{}, err
			}
			defer s.Close()
			return noiseSample{Accuracy: s.Accuracy(), Rejected: s.ProtocolErrors()}, nil
		},
	}, func(out *runner.Outcome[noiseSample]) (*NoiseResult, error) {
		res := &NoiseResult{
			Accuracy: stats.Series{Name: "accuracy"},
			Rejected: stats.Series{Name: "rejected records"},
		}
		for i, sigma := range p.Sigmas {
			var accs []float64
			rejected := 0
			for _, sample := range out.Points[i] {
				accs = append(accs, sample.Accuracy)
				rejected += sample.Rejected
			}
			sum := stats.Summarize(accs)
			res.Accuracy.Append(sigma, sum.Mean, sum.CI95())
			res.Rejected.Append(sigma, float64(rejected)/float64(len(out.Points[i])), 0)
		}
		return res, nil
	})
}

// noiseSample is one noisy-verifier deployment.
type noiseSample struct {
	Accuracy float64
	Rejected int
}

// SchemeParams configures the key-predistribution ablation: the paper
// assumes every pair can establish a key; under Eschenauer–Gligor the
// coverage is probabilistic and gates record exchange.
type SchemeParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	PoolSize  int
	// RingSizes is the sweep of per-node key ring sizes.
	RingSizes []int
	Seed      int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *SchemeParams) applyDefaults() {
	mergeDefaults(p, SchemeParams{
		Nodes: 150, FieldSide: 100, Range: 50, Threshold: 5, PoolSize: 1000,
		RingSizes: []int{20, 40, 80, 120, 200},
	})
}

// SchemeResult reports accuracy and key coverage per ring size.
type SchemeResult struct {
	Coverage stats.Series
	Accuracy stats.Series
	Failures stats.Series
	HealthReport
}

// Table renders the result.
func (r *SchemeResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Ablation — Eschenauer–Gligor key ring size vs protocol accuracy",
		XLabel:  "ring size k",
		Series:  []*stats.Series{&r.Coverage, &r.Accuracy, &r.Failures},
		Comment: "secure channels on: pairs without a shared pool key cannot exchange records",
	}
}

// Render formats the table for terminal output.
func (r *SchemeResult) Render() string { return r.Table().Render() }

// SchemeAblation sweeps the EG ring size with secure channels enabled.
func SchemeAblation(ctx context.Context, p SchemeParams) (*SchemeResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[schemeSample]{
		Name: "ablation-scheme", Params: p, Points: len(p.RingSizes), Trials: 1,
		Trial: func(point, _ int) (schemeSample, error) {
			ring := p.RingSizes[point]
			eg, err := crypto.NewEGScheme(p.PoolSize, ring, p.Seed+int64(ring))
			if err != nil {
				return schemeSample{}, err
			}
			// Provision generously: the layout assigns IDs sequentially.
			for id := 1; id <= 4*p.Nodes; id++ {
				eg.Provision(nodeid.ID(id))
			}
			s, err := sim.New(sim.Params{
				Field: geometry.NewField(p.FieldSide, p.FieldSide), Range: p.Range,
				Nodes: p.Nodes, Threshold: p.Threshold, Seed: p.Seed + int64(ring),
				SecureChannels: true, Scheme: eg,
			})
			if err != nil {
				return schemeSample{}, err
			}
			defer s.Close()
			return schemeSample{
				Coverage: eg.ConnectivityEstimate(),
				Accuracy: s.Accuracy(),
				Failures: float64(s.ChannelFailures()),
			}, nil
		},
	}, func(out *runner.Outcome[schemeSample]) (*SchemeResult, error) {
		res := &SchemeResult{
			Coverage: stats.Series{Name: "analytical key coverage"},
			Accuracy: stats.Series{Name: "accuracy"},
			Failures: stats.Series{Name: "channel failures"},
		}
		for i, ring := range p.RingSizes {
			for _, sample := range out.Points[i] {
				res.Coverage.Append(float64(ring), sample.Coverage, 0)
				res.Accuracy.Append(float64(ring), sample.Accuracy, 0)
				res.Failures.Append(float64(ring), sample.Failures, 0)
			}
		}
		return res, nil
	})
}

// schemeSample is one key-ring configuration's measurement.
type schemeSample struct {
	Coverage float64
	Accuracy float64
	Failures float64
}

// EnginesParams configures the sync-vs-async engine equivalence check.
type EnginesParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	Seed      int64
	// Engine executes the comparison; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *EnginesParams) applyDefaults() {
	mergeDefaults(p, EnginesParams{
		Nodes: 120, FieldSide: 100, Range: 50, Threshold: 10,
	})
}

// enginesSample is the single cached measurement of the comparison.
type enginesSample struct {
	SyncAccuracy  float64
	AsyncAccuracy float64
	SyncMessages  int
	AsyncMessages int
}

// EnginesResult compares the two engines over the same deployment.
type EnginesResult struct {
	SyncAccuracy  float64
	AsyncAccuracy float64
	SyncMessages  int
	AsyncMessages int
	HealthReport
}

// Render formats the comparison.
func (r *EnginesResult) Render() string {
	return fmt.Sprintf(
		"== Ablation — deterministic engine vs goroutine-per-node engine ==\n"+
			"sync  engine: accuracy %.4f, %d frames\n"+
			"async engine: accuracy %.4f, %d frames\n",
		r.SyncAccuracy, r.SyncMessages, r.AsyncAccuracy, r.AsyncMessages)
}

// Engines runs both engines over identical node positions and compares
// the functional topologies they produce. The protocol is deterministic
// given lossless delivery, so the accuracies must agree exactly.
func Engines(ctx context.Context, p EnginesParams) (*EnginesResult, error) {
	p.applyDefaults()
	field := geometry.NewField(p.FieldSide, p.FieldSide)
	return runGrid(ctx, p.Engine, grid[enginesSample]{
		Name: "ablation-engines", Params: p, Points: 1, Trials: 1,
		Trial: func(_, _ int) (enginesSample, error) {
			// Deterministic engine.
			s, err := sim.New(sim.Params{
				Field: field, Range: p.Range, Nodes: p.Nodes,
				Threshold: p.Threshold, Seed: p.Seed,
			})
			if err != nil {
				return enginesSample{}, err
			}
			defer s.Close()
			sample := enginesSample{
				SyncAccuracy: s.Accuracy(),
				SyncMessages: s.Medium().Counters().Sent,
			}

			// Rebuild the identical physical deployment for the async engine.
			layout := deploy.NewLayout(field)
			for _, d := range s.Layout().Devices() {
				layout.Deploy(d.Origin, 0)
			}
			medium := radio.NewMedium(layout, radio.Config{Range: p.Range, InboxSize: 8192, Seed: p.Seed})
			master, err := crypto.NewMasterKey(nil)
			if err != nil {
				return enginesSample{}, err
			}
			functional, err := async.DiscoverAll(layout, medium, master,
				async.Config{Threshold: p.Threshold, DiscoveryTimeout: 2 * time.Second},
				verify.Oracle{})
			if err != nil {
				return enginesSample{}, err
			}
			sample.AsyncAccuracy = topology.Accuracy(functional, layout.TruthGraph(p.Range))
			sample.AsyncMessages = medium.Counters().Sent
			return sample, nil
		},
	}, func(out *runner.Outcome[enginesSample]) (*EnginesResult, error) {
		if len(out.Points[0]) == 0 {
			return nil, fmt.Errorf("exp: engines comparison produced no sample")
		}
		s := out.Points[0][0]
		return &EnginesResult{
			SyncAccuracy:  s.SyncAccuracy,
			AsyncAccuracy: s.AsyncAccuracy,
			SyncMessages:  s.SyncMessages,
			AsyncMessages: s.AsyncMessages,
		}, nil
	})
}
