package exp

import (
	"context"
	"fmt"
	"math/rand"

	"snd/internal/core"
	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/runner"
	"snd/internal/sim"
	"snd/internal/stats"
)

// SafetyParams configures the Theorem 3 audit (experiment E3): with at
// most t compromised nodes, every compromised identity's benign accepters
// must fit in a circle of radius 2R.
type SafetyParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	// CompromiseCounts is the sweep of how many nodes the attacker
	// compromises (each ≤ Threshold for the guarantee to apply).
	CompromiseCounts []int
	Trials           int
	Seed             int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *SafetyParams) applyDefaults() {
	mergeDefaults(p, SafetyParams{
		Nodes: 300, FieldSide: 100, Range: 25, Threshold: 6,
		CompromiseCounts: []int{1, 2, 4, 6}, Trials: 10,
	})
}

// SafetyResult reports the audit sweep.
type SafetyResult struct {
	// Violations[i] is the fraction of trials at CompromiseCounts[i] with
	// any 2R-safety violation (must be 0 while counts ≤ t).
	ViolationRate stats.Series
	// WorstEnclosing is the maximum enclosing radius observed per count.
	WorstEnclosing stats.Series
	// Bound is 2R.
	Bound float64
	HealthReport
}

// Table renders the result.
func (r *SafetyResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Theorem 3 audit — 2R-safety under ≤ t compromised nodes",
		XLabel:  "#compromised",
		Series:  []*stats.Series{&r.ViolationRate, &r.WorstEnclosing},
		Comment: fmt.Sprintf("bound 2R = %.0f m; replicas planted at all four field corners", r.Bound),
	}
}

// Render formats the table for terminal output.
func (r *SafetyResult) Render() string { return r.Table().Render() }

// safetySample is one audited deployment.
type safetySample struct {
	Violated bool
	Worst    float64
}

// Safety runs E3: compromise k ≤ t random nodes, replicate each at every
// field corner, let a fresh wave of nodes deploy, and audit the 2R bound.
func Safety(ctx context.Context, p SafetyParams) (*SafetyResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[safetySample]{
		Name: "safety", Params: p, Points: len(p.CompromiseCounts), Trials: p.Trials,
		Trial: func(point, trial int) (safetySample, error) {
			k := p.CompromiseCounts[point]
			s, err := sim.New(sim.Params{
				Field:     geometry.NewField(p.FieldSide, p.FieldSide),
				Range:     p.Range,
				Nodes:     p.Nodes,
				Threshold: p.Threshold,
				Seed:      p.Seed + int64(k*1000+trial),
			})
			if err != nil {
				return safetySample{}, err
			}
			defer s.Close()
			victims, err := pickVictims(s, k)
			if err != nil {
				return safetySample{}, err
			}
			if err := s.Compromise(victims...); err != nil {
				return safetySample{}, err
			}
			inset := p.Range / 4
			corners := []geometry.Point{
				{X: inset, Y: inset},
				{X: p.FieldSide - inset, Y: inset},
				{X: inset, Y: p.FieldSide - inset},
				{X: p.FieldSide - inset, Y: p.FieldSide - inset},
			}
			for _, v := range victims {
				for _, c := range corners {
					if _, err := s.PlantReplica(v, c); err != nil {
						return safetySample{}, err
					}
				}
			}
			if err := s.DeployRound(p.Nodes / 3); err != nil {
				return safetySample{}, err
			}
			reports := s.AuditSafety(2 * p.Range)
			return safetySample{
				Violated: core.Violations(reports) > 0,
				Worst:    core.WorstCase(reports).EnclosingRadius,
			}, nil
		},
	}, func(out *runner.Outcome[safetySample]) (*SafetyResult, error) {
		res := &SafetyResult{
			ViolationRate:  stats.Series{Name: "violation rate"},
			WorstEnclosing: stats.Series{Name: "worst enclosing radius (m)"},
			Bound:          2 * p.Range,
		}
		for i, k := range p.CompromiseCounts {
			violated, worst := 0, 0.0
			for _, sample := range out.Points[i] {
				if sample.Violated {
					violated++
				}
				if sample.Worst > worst {
					worst = sample.Worst
				}
			}
			res.ViolationRate.Append(float64(k), float64(violated)/float64(len(out.Points[i])), 0)
			res.WorstEnclosing.Append(float64(k), worst, 0)
		}
		return res, nil
	})
}

// pickVictims selects k distinct random operational nodes spread across
// the field.
func pickVictims(s *sim.Simulation, k int) ([]nodeid.ID, error) {
	var candidates []nodeid.ID
	for _, d := range s.Layout().Devices() {
		if !d.Replica && d.Alive {
			candidates = append(candidates, d.Node)
		}
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("exp: only %d candidates for %d victims", len(candidates), k)
	}
	rng := rand.New(rand.NewSource(int64(len(candidates))*31 + int64(k)))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:k], nil
}

// BreakdownParams configures E4: the clone-clique attack with clique size
// sweeping past the threshold, showing where the guarantee stops.
type BreakdownParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	// CliqueSizes is the sweep (default 2..t+3).
	CliqueSizes []int
	Trials      int
	Seed        int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *BreakdownParams) applyDefaults() {
	mergeDefaults(p, BreakdownParams{
		Nodes: 300, FieldSide: 100, Range: 20, Threshold: 4, Trials: 10,
	})
	// The clique-size grid depends on the (possibly defaulted) threshold.
	if len(p.CliqueSizes) == 0 {
		p.CliqueSizes = seqInts(2, p.Threshold+3, 1)
	}
}

// BreakdownResult reports violation rates against clique size.
type BreakdownResult struct {
	ViolationRate stats.Series
	Threshold     int
	Bound         float64
	HealthReport
}

// Table renders the result.
func (r *BreakdownResult) Table() *stats.Table {
	return &stats.Table{
		Title:  "Threshold breakdown — clone-clique attack vs clique size k",
		XLabel: "k (clique size)",
		Series: []*stats.Series{&r.ViolationRate},
		Comment: fmt.Sprintf("t = %d: guarantee holds for k ≤ t+1 = %d, breaks at k ≥ t+2 = %d (bound 2R = %.0f m)",
			r.Threshold, r.Threshold+1, r.Threshold+2, r.Bound),
	}
}

// Render formats the table for terminal output.
func (r *BreakdownResult) Render() string { return r.Table().Render() }

// breakdownSample is one clone-clique trial.
type breakdownSample struct {
	Violated bool
}

// Breakdown runs E4: for each clique size k, compromise a co-located
// k-clique, replicate it at the far corner, steer fresh nodes there, and
// measure how often 2R-safety is violated. The transition at k = t+2 shows
// the threshold guarantee of Theorem 3 is tight.
func Breakdown(ctx context.Context, p BreakdownParams) (*BreakdownResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[breakdownSample]{
		Name: "breakdown", Params: p, Points: len(p.CliqueSizes), Trials: p.Trials,
		Trial: func(point, trial int) (breakdownSample, error) {
			k := p.CliqueSizes[point]
			s, err := sim.New(sim.Params{
				Field:     geometry.NewField(p.FieldSide, p.FieldSide),
				Range:     p.Range,
				Nodes:     p.Nodes,
				Threshold: p.Threshold,
				Seed:      p.Seed + int64(k*1000+trial),
			})
			if err != nil {
				return breakdownSample{}, err
			}
			defer s.Close()
			_, target, err := s.CloneCliqueAttack(k, geometry.Point{})
			if err != nil {
				return breakdownSample{}, err
			}
			staging := geometry.Rect{
				Min: geometry.Point{X: target.X - 15, Y: target.Y - 15},
				Max: geometry.Point{X: target.X + 15, Y: target.Y + 15},
			}
			if err := s.DeployRoundAt(p.Nodes/10, deploy.Within{Region: staging}); err != nil {
				return breakdownSample{}, err
			}
			return breakdownSample{Violated: core.Violations(s.AuditSafety(2*p.Range)) > 0}, nil
		},
	}, func(out *runner.Outcome[breakdownSample]) (*BreakdownResult, error) {
		res := &BreakdownResult{
			ViolationRate: stats.Series{Name: "violation rate"},
			Threshold:     p.Threshold,
			Bound:         2 * p.Range,
		}
		for i, k := range p.CliqueSizes {
			violated := 0
			for _, sample := range out.Points[i] {
				if sample.Violated {
					violated++
				}
			}
			res.ViolationRate.Append(float64(k), float64(violated)/float64(len(out.Points[i])), 0)
		}
		return res, nil
	})
}

// UpdateParams configures E9: the binding-record update extension in an
// aging network, and the (m+1)R safety bound of Theorem 4.
type UpdateParams struct {
	Nodes     int
	FieldSide float64
	Range     float64
	Threshold int
	// UpdateBudgets is the sweep of m values.
	UpdateBudgets []int
	// Waves is how many redeployment waves the aging network receives.
	Waves  int
	Trials int
	Seed   int64
	// Engine executes the trials; nil uses runner.Default().
	Engine *runner.Engine `json:"-"`
}

func (p *UpdateParams) applyDefaults() {
	mergeDefaults(p, UpdateParams{
		Nodes: 200, FieldSide: 100, Range: 25, Threshold: 4,
		UpdateBudgets: []int{0, 1, 2, 3}, Waves: 3, Trials: 5,
	})
}

// UpdateResult reports accuracy and safety as functions of the update
// budget m.
type UpdateResult struct {
	Accuracy stats.Series
	// MaxReach is the largest compromised-node reach observed; Theorem 4
	// bounds it by (m+1)R.
	MaxReach stats.Series
	// TheoremBound is the (m+1)R curve for reference.
	TheoremBound stats.Series
	Range        float64
	HealthReport
}

// Table renders the result.
func (r *UpdateResult) Table() *stats.Table {
	return &stats.Table{
		Title:   "Update extension — aging-network accuracy and (m+1)R safety vs update budget m",
		XLabel:  "m",
		Series:  []*stats.Series{&r.Accuracy, &r.MaxReach, &r.TheoremBound},
		Comment: fmt.Sprintf("R = %.0f m; 30%% battery death then redeployment waves; one compromised node replicated mid-field", r.Range),
	}
}

// Render formats the table for terminal output.
func (r *UpdateResult) Render() string { return r.Table().Render() }

// updateSample is one aging-network trial.
type updateSample struct {
	Accuracy float64
	MaxReach float64
}

// Update runs E9: an aging network (battery deaths, redeployment waves)
// under each update budget m. Accuracy should improve with m (old nodes can
// re-bind to include newcomers); the compromised node's reach must stay
// within (m+1)·R as its replica exploits the same update mechanism.
func Update(ctx context.Context, p UpdateParams) (*UpdateResult, error) {
	p.applyDefaults()
	return runGrid(ctx, p.Engine, grid[updateSample]{
		Name: "update", Params: p, Points: len(p.UpdateBudgets), Trials: p.Trials,
		Trial: func(point, trial int) (updateSample, error) {
			m := p.UpdateBudgets[point]
			s, err := sim.New(sim.Params{
				Field:      geometry.NewField(p.FieldSide, p.FieldSide),
				Range:      p.Range,
				Nodes:      p.Nodes,
				Threshold:  p.Threshold,
				MaxUpdates: m,
				Seed:       p.Seed + int64(m*1000+trial),
			})
			if err != nil {
				return updateSample{}, err
			}
			defer s.Close()
			// Compromise one node and plant a replica 3R away, where the
			// update mechanism is its only path to new functional links.
			victim := s.Layout().ClosestToCenter()
			if err := s.Compromise(victim.Node); err != nil {
				return updateSample{}, err
			}
			pos := s.Params().Field.Clamp(victim.Origin.Add(geometry.Point{X: 3 * p.Range, Y: 0}))
			if _, err := s.PlantReplica(victim.Node, pos); err != nil {
				return updateSample{}, err
			}
			s.KillFraction(0.3)
			for w := 0; w < p.Waves; w++ {
				if err := s.DeployRound(p.Nodes / 5); err != nil {
					return updateSample{}, err
				}
			}
			sample := updateSample{Accuracy: s.Accuracy()}
			for _, r := range s.AuditSafety(float64(maxInt(m, 1)+1) * p.Range) {
				if r.Reach > sample.MaxReach {
					sample.MaxReach = r.Reach
				}
			}
			return sample, nil
		},
	}, func(out *runner.Outcome[updateSample]) (*UpdateResult, error) {
		res := &UpdateResult{
			Accuracy:     stats.Series{Name: "accuracy"},
			MaxReach:     stats.Series{Name: "max compromised reach (m)"},
			TheoremBound: stats.Series{Name: "(m+1)R bound"},
			Range:        p.Range,
		}
		for i, m := range p.UpdateBudgets {
			var accs []float64
			maxReach := 0.0
			for _, sample := range out.Points[i] {
				accs = append(accs, sample.Accuracy)
				if sample.MaxReach > maxReach {
					maxReach = sample.MaxReach
				}
			}
			sum := stats.Summarize(accs)
			res.Accuracy.Append(float64(m), sum.Mean, sum.CI95())
			res.MaxReach.Append(float64(m), maxReach, 0)
			res.TheoremBound.Append(float64(m), float64(maxInt(m, 1)+1)*p.Range, 0)
		}
		return res, nil
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
