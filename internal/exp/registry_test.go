package exp

import (
	"context"
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestDefaultParamsRoundTrip encodes every experiment's DefaultParams and
// decodes it back through the registry's strict decoder: the round trip
// must be lossless and must not trip DisallowUnknownFields. This catches
// schema drift — a params field the decoder cannot accept, or defaults
// that do not survive their own encoding.
func TestDefaultParamsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		e, _ := Lookup(name)
		def := e.DefaultParams()
		raw, err := json.Marshal(def)
		if err != nil {
			t.Fatalf("%s: marshal defaults: %v", name, err)
		}
		bound, err := e.Decode(raw)
		if err != nil {
			t.Fatalf("%s: decode own defaults: %v", name, err)
		}
		if got := bound.DefaultParams(); !reflect.DeepEqual(got, def) {
			t.Errorf("%s: DefaultParams not stable across decode: %+v != %+v", name, got, def)
		}
	}
}

// TestCatalogShape checks every catalog entry is complete: description,
// non-empty schema with Seed present, defaults that marshal, and a name
// that resolves back through Lookup.
func TestCatalogShape(t *testing.T) {
	catalog := Catalog()
	if len(catalog) != len(Names()) {
		t.Fatalf("catalog has %d entries, %d registered", len(catalog), len(Names()))
	}
	for _, entry := range catalog {
		if entry.Description == "" {
			t.Errorf("%s: empty description", entry.Name)
		}
		if len(entry.Params) == 0 {
			t.Errorf("%s: empty params schema", entry.Name)
		}
		seen := false
		for _, f := range entry.Params {
			if f.Name == "" || f.Type == "" {
				t.Errorf("%s: incomplete schema field %+v", entry.Name, f)
			}
			if f.Name == "Engine" {
				t.Errorf("%s: schema leaks the Engine field", entry.Name)
			}
			if f.Name == "Seed" {
				seen = true
			}
		}
		if !seen {
			t.Errorf("%s: schema has no Seed field", entry.Name)
		}
		if _, err := json.Marshal(entry.Defaults); err != nil {
			t.Errorf("%s: defaults do not marshal: %v", entry.Name, err)
		}
		if _, ok := Lookup(entry.Name); !ok {
			t.Errorf("%s: catalog name does not resolve", entry.Name)
		}
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
}

// TestDecodeRejectsUnknownAndMistyped verifies the strict decoder names
// the offending field for both failure classes.
func TestDecodeRejectsUnknownAndMistyped(t *testing.T) {
	e, ok := Lookup("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	if _, err := e.Decode(json.RawMessage(`{"Nodez":5}`)); err == nil || !strings.Contains(err.Error(), "Nodez") {
		t.Errorf("unknown field: want error naming Nodez, got %v", err)
	}
	if _, err := e.Decode(json.RawMessage(`{"Nodes":"many"}`)); err == nil || !strings.Contains(err.Error(), "Nodes") {
		t.Errorf("mistyped field: want error naming Nodes, got %v", err)
	}
}

// TestDecodeCLIMerging covers the -trials/-seed flag merge rules.
func TestDecodeCLIMerging(t *testing.T) {
	// Flags fill fields absent from the document.
	e, err := DecodeCLI("fig3", `{"Nodes":50}`, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	p := e.DefaultParams().(Fig3Params)
	if p.Trials != 7 || p.Seed != 42 || p.Nodes != 50 {
		t.Errorf("merge: got Trials=%d Seed=%d Nodes=%d", p.Trials, p.Seed, p.Nodes)
	}
	// The document wins over flags.
	e, err = DecodeCLI("fig3", `{"Trials":3,"Seed":9}`, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	p = e.DefaultParams().(Fig3Params)
	if p.Trials != 3 || p.Seed != 9 {
		t.Errorf("document should win: got Trials=%d Seed=%d", p.Trials, p.Seed)
	}
	// Experiments without a Trials field ignore the override.
	if _, err := DecodeCLI("overhead", "", 7, 42); err != nil {
		t.Errorf("overhead should ignore -trials: %v", err)
	}
	// Unknown experiment.
	if _, err := DecodeCLI("nope", "", 0, 1); err == nil {
		t.Error("unknown experiment should error")
	}
	// Bad JSON document.
	if _, err := DecodeCLI("fig3", `{"Nodes":`, 0, 1); err == nil {
		t.Error("bad params JSON should error")
	}
}

// TestEveryNameRunnable runs each registered experiment at its golden
// (tiny) configuration through the full Experiment interface — the
// "every name in the catalog is runnable" half of the round-trip
// satellite. The golden test asserts output; this one asserts the
// interface path itself, including the Health accessor.
func TestEveryNameRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, _ := Lookup(name)
			bound, err := e.Decode(json.RawMessage(goldenConfigs[name]))
			if err != nil {
				t.Fatal(err)
			}
			res, err := bound.Run(context.Background(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Render() == "" {
				t.Error("empty Render()")
			}
			if h := res.Health(); h.Degraded() {
				t.Errorf("degraded sweep at golden config: %s", h)
			}
		})
	}
}
