package exp

import (
	"context"
	"strings"
	"testing"
)

func TestIsolationGrowsWithThreshold(t *testing.T) {
	t.Parallel()
	res, err := Isolation(context.Background(), IsolationParams{
		Thresholds: []int{0, 120, 155},
		Trials:     3,
		Seed:       51,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At t = 0 the functional topology is essentially the full network:
	// (almost) nobody is isolated.
	if res.IsolatedFraction.Y[0] > 0.05 {
		t.Errorf("isolated fraction at t=0 is %v", res.IsolatedFraction.Y[0])
	}
	// At t = 155 hardly any pair shares 156 common neighbors: the graph
	// shatters.
	if res.IsolatedFraction.Y[2] < 0.5 {
		t.Errorf("isolated fraction at t=155 is %v, want most nodes isolated", res.IsolatedFraction.Y[2])
	}
	// Monotone (within noise) across the sweep.
	if res.IsolatedFraction.Y[1] > res.IsolatedFraction.Y[2]+0.1 {
		t.Errorf("isolation not growing: %v", res.IsolatedFraction.Y)
	}
	// Partition count grows as the topology fragments.
	if res.Partitions.Y[2] <= res.Partitions.Y[0] {
		t.Errorf("partitions did not grow: %v", res.Partitions.Y)
	}
	if out := res.Table().Render(); !strings.Contains(out, "connectivity") {
		t.Error("render missing title")
	}
}
