package exp

import (
	"context"
	"reflect"
	"testing"

	"snd/internal/runner"
)

// The engine's core guarantee: for a fixed seed, results are bit-identical
// no matter how many workers shard the trials. Each subtest runs one
// experiment serially and on an 8-worker pool and requires DeepEqual
// results. One representative per runner file keeps the runtime sane.

func requireIdentical[T any](t *testing.T, run func(eng *runner.Engine) (T, error)) {
	t.Helper()
	serial, err := run(runner.New(runner.Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := run(runner.New(runner.Options{Workers: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel result diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	// Small deployments throughout: determinism does not depend on scale,
	// and this whole test runs twice per experiment (and again under
	// -race in CI).
	t.Run("fig3", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*Fig3Result, error) {
			return Fig3(context.Background(), Fig3Params{Nodes: 100, Trials: 3, Seed: 11, Engine: eng})
		})
	})
	t.Run("fig4", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*Fig4Result, error) {
			return Fig4(context.Background(), Fig4Params{Trials: 2, Seed: 12, Densities: []float64{10, 20}, Engine: eng})
		})
	})
	t.Run("safety", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*SafetyResult, error) {
			return Safety(context.Background(), SafetyParams{Nodes: 120, Trials: 2, CompromiseCounts: []int{1, 2}, Seed: 13, Engine: eng})
		})
	})
	t.Run("compare", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*CompareResult, error) {
			return Compare(context.Background(), CompareParams{Nodes: 100, Trials: 2, Seed: 14, Engine: eng})
		})
	})
	t.Run("isolation", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*IsolationResult, error) {
			return Isolation(context.Background(), IsolationParams{Nodes: 100, Trials: 2, Thresholds: []int{0, 80}, Seed: 15, Engine: eng})
		})
	})
	t.Run("routing", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*RoutingResult, error) {
			return Routing(context.Background(), RoutingParams{Nodes: 150, Trials: 2, Pairs: 20, Seed: 16, Engine: eng})
		})
	})
	t.Run("aggregation", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*AggregationResult, error) {
			return Aggregation(context.Background(), AggregationParams{Nodes: 150, Trials: 2, Seed: 17, Engine: eng})
		})
	})
	t.Run("noise", func(t *testing.T) {
		t.Parallel()
		requireIdentical(t, func(eng *runner.Engine) (*NoiseResult, error) {
			return VerifierNoise(context.Background(), NoiseParams{Nodes: 100, Trials: 2, Sigmas: []float64{0, 4}, Seed: 18, Engine: eng})
		})
	})
}
