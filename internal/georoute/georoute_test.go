package georoute

import (
	"math/rand"
	"testing"

	"snd/internal/deploy"
	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/topology"
	"snd/internal/verify"
)

// lineWorld builds positions/links for a chain of n nodes step apart.
func lineWorld(n int, step, r float64) (map[nodeid.ID]geometry.Point, *topology.Graph) {
	pos := make(map[nodeid.ID]geometry.Point, n)
	g := topology.New()
	for i := 1; i <= n; i++ {
		pos[nodeid.ID(i)] = geometry.Point{X: float64(i-1) * step, Y: 10}
		g.AddNode(nodeid.ID(i))
	}
	for a := 1; a <= n; a++ {
		for b := a + 1; b <= n; b++ {
			if pos[nodeid.ID(a)].InRange(pos[nodeid.ID(b)], r) {
				g.AddMutual(nodeid.ID(a), nodeid.ID(b))
			}
		}
	}
	return pos, g
}

func TestGreedyDeliversOnLine(t *testing.T) {
	pos, g := lineWorld(10, 30, 50)
	r := New(pos, g, nil)
	res, err := r.Route(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("line route failed: %+v", res)
	}
	if res.Hops < 5 || res.Hops > 9 {
		t.Errorf("hops = %d on a 9-link chain with 30 m steps, R=50", res.Hops)
	}
	if res.PerimeterHops != 0 {
		t.Errorf("perimeter used on a straight line: %d", res.PerimeterHops)
	}
}

func TestUnknownEndpoints(t *testing.T) {
	pos, g := lineWorld(3, 30, 50)
	r := New(pos, g, nil)
	if _, err := r.Route(99, 1); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := r.Route(1, 99); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestSelfRoute(t *testing.T) {
	pos, g := lineWorld(3, 30, 50)
	r := New(pos, g, nil)
	res, err := r.Route(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Hops != 0 {
		t.Errorf("self route = %+v", res)
	}
}

func TestPerimeterEscapesVoid(t *testing.T) {
	// A "U" around a void: greedy from the left arm toward the right arm
	// gets stuck at the tip, perimeter routing goes around.
	pos := map[nodeid.ID]geometry.Point{
		1: {X: 0, Y: 100},  // source (top left)
		2: {X: 0, Y: 60},   // down the left arm
		3: {X: 0, Y: 20},   //
		4: {X: 40, Y: 0},   // bottom of the U
		5: {X: 80, Y: 20},  // up the right arm
		6: {X: 80, Y: 60},  //
		7: {X: 80, Y: 100}, // destination (top right)
		8: {X: 40, Y: -30}, // extra bottom node
	}
	g := topology.New()
	link := func(a, b nodeid.ID) { g.AddMutual(a, b) }
	link(1, 2)
	link(2, 3)
	link(3, 4)
	link(4, 5)
	link(5, 6)
	link(6, 7)
	link(4, 8)
	r := New(pos, g, nil)
	res, err := r.Route(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("U-route failed: %+v", res)
	}
	if res.PerimeterHops == 0 {
		t.Error("route around a void without perimeter mode is impossible; greedy must have been wrongly sufficient")
	}
}

func TestStuckWhenDisconnected(t *testing.T) {
	pos := map[nodeid.ID]geometry.Point{
		1: {X: 0, Y: 0},
		2: {X: 10, Y: 0},
		3: {X: 500, Y: 0},
	}
	g := topology.New()
	g.AddMutual(1, 2)
	g.AddNode(3)
	r := New(pos, g, nil)
	res, err := r.Route(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Error("delivered across a disconnected graph")
	}
	if res.LostAtPhantom {
		t.Error("disconnection misreported as phantom loss")
	}
}

func TestPhantomNeighborLosesPacket(t *testing.T) {
	// The attack effect from the paper's introduction: the neighbor table
	// claims a far-away node is adjacent (a replica made it so), greedy
	// forwards to it, and the packet is lost because the real node is not
	// within radio range.
	pos, g := lineWorld(6, 30, 50)
	// Poison node 2's table: node 6 (150 m away) appears adjacent.
	g.AddRelation(2, 6)
	reach := func(a, b nodeid.ID) bool {
		return pos[a].InRange(pos[b], 50) // physics
	}
	r := New(pos, g, reach)
	res, err := r.Route(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("delivered through a phantom link")
	}
	if !res.LostAtPhantom {
		t.Errorf("loss not attributed to phantom neighbor: %+v", res)
	}
}

func TestEvaluateOverRandomDeployment(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(200, 200))
	rng := rand.New(rand.NewSource(5))
	l.DeploySampled(deploy.Uniform{}, 250, rng, 0)
	g := verify.TentativeGraph(l, verify.Oracle{}, 40)
	pos := make(map[nodeid.ID]geometry.Point)
	for _, d := range l.Devices() {
		pos[d.Node] = d.Pos
	}
	r := New(pos, g, nil)

	var pairs []nodeid.Pair
	ids := g.Nodes()
	for i := 0; i < 100; i++ {
		pairs = append(pairs, nodeid.Pair{
			From: ids[rng.Intn(len(ids))],
			To:   ids[rng.Intn(len(ids))],
		})
	}
	stats, err := r.Evaluate(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 100 {
		t.Fatalf("attempts = %d", stats.Attempts)
	}
	// A 250-node/200 m²/R=40 deployment is essentially connected: GPSR
	// should deliver the large majority.
	if stats.DeliveryRate() < 0.8 {
		t.Errorf("delivery rate %v too low for a dense connected network", stats.DeliveryRate())
	}
	if stats.MeanHops <= 1 {
		t.Errorf("mean hops %v implausible", stats.MeanHops)
	}
	if stats.PhantomLosses != 0 {
		t.Errorf("phantom losses %d over truthful tables", stats.PhantomLosses)
	}
}

func TestGabrielGraphIsSubgraph(t *testing.T) {
	l := deploy.NewLayout(geometry.NewField(100, 100))
	rng := rand.New(rand.NewSource(6))
	l.DeploySampled(deploy.Uniform{}, 80, rng, 0)
	g := verify.TentativeGraph(l, verify.Oracle{}, 40)
	pos := make(map[nodeid.ID]geometry.Point)
	for _, d := range l.Devices() {
		pos[d.Node] = d.Pos
	}
	r := New(pos, g, nil)
	total := 0
	for u, adj := range r.planar {
		total += len(adj)
		for _, v := range adj {
			if !g.HasRelation(u, v) {
				t.Fatalf("planar edge (%v,%v) not in the original graph", u, v)
			}
		}
	}
	if total == 0 {
		t.Fatal("empty planarization")
	}
	if total >= g.NumRelations() {
		t.Errorf("gabriel graph (%d) did not prune any of %d relations", total, g.NumRelations())
	}
}

func BenchmarkRoute(b *testing.B) {
	l := deploy.NewLayout(geometry.NewField(200, 200))
	rng := rand.New(rand.NewSource(7))
	l.DeploySampled(deploy.Uniform{}, 250, rng, 0)
	g := verify.TentativeGraph(l, verify.Oracle{}, 40)
	pos := make(map[nodeid.ID]geometry.Point)
	for _, d := range l.Devices() {
		pos[d.Node] = d.Pos
	}
	r := New(pos, g, nil)
	ids := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(ids[i%len(ids)], ids[(i*7+3)%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
