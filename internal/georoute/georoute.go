// Package georoute implements GPSR-style geographic routing (Karp & Kung,
// MobiCom 2000 — the paper's reference [12] and its motivating example for
// why nodes need correct neighbor lists): greedy forwarding toward the
// destination's position, with compass-style recovery routing over a
// planarized (Gabriel) subgraph to escape local minima — a simplification
// of GPSR's perimeter mode that preserves its structure: a planar
// subgraph, a recovery mode entered at local minima and left only once
// the packet is closer than the entry point.
//
// The router consumes a neighbor table per node — either the ground truth,
// the tentative topology, or the protocol's functional topology — which is
// exactly the knob the paper's introduction turns: "a sensor node will
// fail to route packets if the next hop on the routing path is not its
// neighbor." Routing over an attacker-polluted tentative topology forwards
// packets to phantom neighbors and fails; routing over the validated
// functional topology does not.
package georoute

import (
	"fmt"
	"math"

	"snd/internal/geometry"
	"snd/internal/nodeid"
	"snd/internal/topology"
)

// Router routes over a fixed set of node positions and a neighbor graph.
type Router struct {
	pos map[nodeid.ID]geometry.Point
	// links is the neighbor table used for forwarding decisions.
	links *topology.Graph
	// reach reports whether a frame sent from a to b is actually
	// delivered — the physical truth, as opposed to what the neighbor
	// table claims. Forwarding to a claimed neighbor that is not really
	// reachable loses the packet.
	reach func(a, b nodeid.ID) bool
	// planar caches the planarized adjacency used by perimeter mode.
	planar map[nodeid.ID][]nodeid.ID
}

// New builds a router. The reach predicate defaults to "the link exists in
// the graph" when nil (i.e. the neighbor table is trusted to be physical).
func New(pos map[nodeid.ID]geometry.Point, links *topology.Graph, reach func(a, b nodeid.ID) bool) *Router {
	r := &Router{
		pos:   pos,
		links: links,
		reach: reach,
	}
	if r.reach == nil {
		r.reach = func(a, b nodeid.ID) bool { return links.HasRelation(a, b) }
	}
	r.planar = r.gabrielGraph()
	return r
}

// gabrielGraph planarizes the link graph: the edge (u, v) survives iff no
// other claimed neighbor w of u lies inside the disk with diameter uv.
// GPSR uses this (or the RNG) so that face routing is well defined.
func (r *Router) gabrielGraph() map[nodeid.ID][]nodeid.ID {
	planar := make(map[nodeid.ID][]nodeid.ID)
	for _, u := range r.links.Nodes() {
		pu, ok := r.pos[u]
		if !ok {
			continue
		}
		r.links.ForEachOut(u, func(v nodeid.ID) {
			pv, ok := r.pos[v]
			if !ok {
				return
			}
			mid := geometry.Point{X: (pu.X + pv.X) / 2, Y: (pu.Y + pv.Y) / 2}
			radius2 := pu.Dist2(pv) / 4
			keep := true
			r.links.ForEachOut(u, func(w nodeid.ID) {
				if w == v {
					return
				}
				if pw, ok := r.pos[w]; ok && mid.Dist2(pw) < radius2-1e-9 {
					keep = false
				}
			})
			if keep {
				planar[u] = append(planar[u], v)
			}
		})
	}
	for _, adj := range planar {
		nodeid.SortIDs(adj)
	}
	return planar
}

// Result describes one routing attempt.
type Result struct {
	// Delivered is true when the packet reached the destination.
	Delivered bool
	// Path holds the nodes traversed, source first.
	Path []nodeid.ID
	// Hops is len(Path)-1 for delivered packets.
	Hops int
	// PerimeterHops counts hops spent in perimeter (face) mode.
	PerimeterHops int
	// LostAtPhantom is true when the failure was caused by forwarding to
	// a neighbor-table entry that is not physically reachable — the exact
	// failure mode the paper's introduction warns about.
	LostAtPhantom bool
}

// Route forwards a packet from src toward dst: greedy mode while progress
// is possible, compass-style recovery over the planarized graph otherwise
// (a simplification of GPSR's perimeter mode). Recovery persists until the
// packet is strictly closer to the destination than where greedy first
// failed — without that rule, greedy and recovery oscillate around voids.
func (r *Router) Route(src, dst nodeid.ID) (Result, error) {
	if _, ok := r.pos[src]; !ok {
		return Result{}, fmt.Errorf("georoute: unknown source %v", src)
	}
	dstPos, ok := r.pos[dst]
	if !ok {
		return Result{}, fmt.Errorf("georoute: unknown destination %v", dst)
	}
	res := Result{Path: []nodeid.ID{src}}
	cur := src
	visited := nodeid.NewSet(src)
	maxHops := 4 * (r.links.NumNodes() + 1)
	recovering := false
	entryDist2 := math.Inf(1)

	for cur != dst && res.Hops < maxHops {
		curDist2 := r.pos[cur].Dist2(dstPos)
		if recovering && curDist2 < entryDist2 {
			recovering = false
		}
		var next nodeid.ID
		if !recovering {
			next = r.greedyNext(cur, dstPos)
			if next == nodeid.None {
				recovering = true
				entryDist2 = curDist2
			}
		}
		if recovering {
			next = r.recoveryNext(cur, dstPos, visited)
		}
		if next == nodeid.None {
			return res, nil // stuck: undeliverable over this topology
		}
		// The neighbor table says next is adjacent; physics decides.
		if !r.reach(cur, next) {
			res.LostAtPhantom = true
			return res, nil
		}
		cur = next
		visited.Add(cur)
		res.Path = append(res.Path, cur)
		res.Hops++
		if recovering {
			res.PerimeterHops++
		}
	}
	res.Delivered = cur == dst
	return res, nil
}

// greedyNext returns the neighbor strictly closer to the destination, or
// None when greedy is stuck at a local minimum.
func (r *Router) greedyNext(cur nodeid.ID, dstPos geometry.Point) nodeid.ID {
	curPos := r.pos[cur]
	best := nodeid.None
	bestD := curPos.Dist2(dstPos)
	r.links.ForEachOut(cur, func(v nodeid.ID) {
		pv, ok := r.pos[v]
		if !ok {
			return
		}
		if d := pv.Dist2(dstPos); d < bestD {
			best, bestD = v, d
		}
	})
	return best
}

// recoveryNext picks the unvisited planar neighbor whose bearing deviates
// least from the destination bearing (compass routing over the Gabriel
// subgraph). The visited set keeps recovery loop-free on simple faces.
func (r *Router) recoveryNext(cur nodeid.ID, dstPos geometry.Point, visited nodeid.Set) nodeid.ID {
	curPos := r.pos[cur]
	bearing := math.Atan2(dstPos.Y-curPos.Y, dstPos.X-curPos.X)
	var (
		chosen    = nodeid.None
		bestAngle = math.Inf(1)
	)
	for _, v := range r.planar[cur] {
		if visited.Contains(v) {
			continue
		}
		pv, ok := r.pos[v]
		if !ok {
			continue
		}
		a := math.Abs(math.Atan2(pv.Y-curPos.Y, pv.X-curPos.X) - bearing)
		if a > math.Pi {
			a = 2*math.Pi - a
		}
		if a < bestAngle {
			bestAngle, chosen = a, v
		}
	}
	return chosen
}

// Stats aggregates many routing attempts.
type Stats struct {
	Attempts      int
	Delivered     int
	PhantomLosses int
	Stuck         int
	MeanHops      float64
	PerimeterUse  float64
}

// DeliveryRate returns the fraction of delivered packets.
func (s Stats) DeliveryRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// Evaluate routes between every given (src, dst) pair and aggregates.
func (r *Router) Evaluate(pairs []nodeid.Pair) (Stats, error) {
	var (
		s        Stats
		hopTotal int
		periTot  int
	)
	for _, p := range pairs {
		res, err := r.Route(p.From, p.To)
		if err != nil {
			return s, err
		}
		s.Attempts++
		if res.Delivered {
			s.Delivered++
			hopTotal += res.Hops
			periTot += res.PerimeterHops
		} else if res.LostAtPhantom {
			s.PhantomLosses++
		} else {
			s.Stuck++
		}
	}
	if s.Delivered > 0 {
		s.MeanHops = float64(hopTotal) / float64(s.Delivered)
		s.PerimeterUse = float64(periTot) / float64(hopTotal+1)
	}
	return s, nil
}
