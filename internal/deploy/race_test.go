//go:build race

package deploy

// raceEnabled reports whether the race detector is compiled in; scale
// smoke tests skip themselves under it.
const raceEnabled = true
