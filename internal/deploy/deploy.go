// Package deploy models the physical side of a sensor network: devices
// placed in a field across deployment rounds, including attacker-planted
// replica devices that carry a compromised node's logical identity
// (Parno et al.'s node replication attack, which the paper defends
// against), battery death, and the ground-truth neighbor graph that
// accuracy is measured against.
//
// The paper's model distinguishes a node's logical identity from the
// physical devices claiming it: a replicated node is one logical ID on many
// devices. Layout therefore tracks Devices, each with a unique Handle, a
// logical node ID, a current position and — crucially for the d-safety
// analysis — the original deployment point, which never changes even if the
// attacker moves the device.
package deploy

import (
	"fmt"
	"math/rand"

	"snd/internal/geometry"
	"snd/internal/nodeid"
)

// Handle uniquely identifies a physical device within a layout. Distinct
// replicas of the same logical node have distinct handles.
type Handle int

// NoHandle is the zero, never-assigned handle.
const NoHandle Handle = 0

// Device is one physical radio in the field.
type Device struct {
	Handle Handle
	// Node is the logical identity the device claims. Replicas share the
	// compromised node's ID.
	Node nodeid.ID
	// Pos is the device's current position.
	Pos geometry.Point
	// Origin is the original deployment point of the logical node; for a
	// replica it is where this replica was planted. Theorem 3's proof
	// reasons about original deployment points.
	Origin geometry.Point
	// Round is the deployment round the device arrived in (0-based).
	Round int
	// Alive is false once the device's battery is depleted or it is
	// physically removed.
	Alive bool
	// Replica marks attacker-planted clones.
	Replica bool
}

// Layout is the set of deployed devices. It is not safe for concurrent
// mutation; the simulation engine owns it.
//
// Handles and node IDs are both assigned densely from 1, so the layout
// stores its state in handle-indexed slices instead of maps: device lookup
// is an array index, and deploying a device is a slice append — no hashing
// on the million-node deployment path. Replica handles (many devices per
// logical node) are the rare case and live in a side map.
type Layout struct {
	field geometry.Rect
	// devices holds every device ever deployed, indexed by Handle-1 —
	// deployment order and handle order coincide by construction.
	devices []*Device
	// primary maps nodeid.ID-1 to the node's original device handle.
	primary []Handle
	// replicas maps a node ID to its replica device handles, ascending;
	// nil until the first replica is planted.
	replicas map[nodeid.ID][]Handle
	nextH    Handle
	nextID   nodeid.ID
	// idx is the uniform-grid spatial index behind the range queries; nil
	// until EnsureGrid builds it (see grid.go), after which Deploy, Kill,
	// and Move maintain it incrementally.
	idx *gridIndex
}

// NewLayout returns an empty layout over the given field.
func NewLayout(field geometry.Rect) *Layout {
	return &Layout{field: field}
}

// Field returns the deployment field.
func (l *Layout) Field() geometry.Rect { return l.field }

// Deploy places a brand-new node (fresh logical ID) at pos in the given
// round and returns its device.
func (l *Layout) Deploy(pos geometry.Point, round int) *Device {
	l.nextH++
	l.nextID++
	d := &Device{
		Handle: l.nextH,
		Node:   l.nextID,
		Pos:    pos,
		Origin: pos,
		Round:  round,
		Alive:  true,
	}
	l.insert(d)
	return d
}

// DeployReplica plants a replica of the logical node id at pos. It fails if
// the node was never deployed.
func (l *Layout) DeployReplica(id nodeid.ID, pos geometry.Point, round int) (*Device, error) {
	if id < 1 || int(id) > len(l.primary) {
		return nil, fmt.Errorf("deploy: replica of unknown node %v", id)
	}
	l.nextH++
	d := &Device{
		Handle:  l.nextH,
		Node:    id,
		Pos:     pos,
		Origin:  pos,
		Round:   round,
		Alive:   true,
		Replica: true,
	}
	l.insert(d)
	return d, nil
}

func (l *Layout) insert(d *Device) {
	l.devices = append(l.devices, d)
	if d.Replica {
		if l.replicas == nil {
			l.replicas = make(map[nodeid.ID][]Handle)
		}
		l.replicas[d.Node] = append(l.replicas[d.Node], d.Handle)
	} else {
		l.primary = append(l.primary, d.Handle)
	}
	if l.idx != nil {
		l.idx.add(d)
	}
}

// DeploySampled deploys n fresh nodes at positions drawn from the sampler.
func (l *Layout) DeploySampled(s Sampler, n int, rng *rand.Rand, round int) []*Device {
	pts := s.Sample(l.field, n, rng)
	out := make([]*Device, 0, len(pts))
	for _, p := range pts {
		out = append(out, l.Deploy(p, round))
	}
	return out
}

// Device returns the device with the given handle, or nil.
func (l *Layout) Device(h Handle) *Device {
	if h < 1 || int(h) > len(l.devices) {
		return nil
	}
	return l.devices[h-1]
}

// Devices returns all devices in deployment order. The slice is fresh but
// the pointers alias layout state; callers mutate devices only through
// Layout methods. Hot paths that only iterate use ForEachDevice instead.
func (l *Layout) Devices() []*Device {
	return append([]*Device(nil), l.devices...)
}

// ForEachDevice invokes fn for every device in deployment order without
// materializing a slice. fn must not deploy or kill from inside the
// callback.
func (l *Layout) ForEachDevice(fn func(*Device)) {
	for _, d := range l.devices {
		fn(d)
	}
}

// DevicesOf returns every device claiming logical node id, originals first.
func (l *Layout) DevicesOf(id nodeid.ID) []*Device {
	var out []*Device
	l.ForEachDeviceOf(id, func(d *Device) { out = append(out, d) })
	return out
}

// Primary returns the original (non-replica) device of node id, or nil.
func (l *Layout) Primary(id nodeid.ID) *Device {
	if id < 1 || int(id) > len(l.primary) {
		return nil
	}
	return l.devices[l.primary[id-1]-1]
}

// NodeIDs returns every logical node ID ever deployed, ascending. IDs are
// assigned sequentially from 1, so this is simply the range [1, nextID].
func (l *Layout) NodeIDs() []nodeid.ID {
	ids := make([]nodeid.ID, len(l.primary))
	for i := range ids {
		ids[i] = nodeid.ID(i + 1)
	}
	return ids
}

// Kill marks the device dead (battery depletion or removal) and drops it
// from the spatial index: dead devices never match a range query.
func (l *Layout) Kill(h Handle) {
	d := l.Device(h)
	if d == nil || !d.Alive {
		return
	}
	d.Alive = false
	if l.idx != nil {
		l.idx.remove(d)
	}
}

// KillFraction kills the given fraction of alive, non-replica devices
// chosen uniformly, returning the killed devices. It models the paper's
// "some sensor nodes run out of battery after the network is in operation
// for a long period of time".
func (l *Layout) KillFraction(frac float64, rng *rand.Rand) []*Device {
	var candidates []*Device
	for _, d := range l.devices {
		if d.Alive && !d.Replica {
			candidates = append(candidates, d)
		}
	}
	n := int(frac * float64(len(candidates)))
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	killed := candidates[:n]
	for _, d := range killed {
		l.Kill(d.Handle)
	}
	return killed
}

// Count returns the total number of devices ever deployed.
func (l *Layout) Count() int { return len(l.devices) }

// AliveCount returns the number of alive devices.
func (l *Layout) AliveCount() int {
	n := 0
	for _, d := range l.devices {
		if d.Alive {
			n++
		}
	}
	return n
}

// ClosestToCenter returns the alive non-replica device nearest the field
// center, which Figure 3's simulation samples to avoid border effects.
func (l *Layout) ClosestToCenter() *Device {
	center := l.field.Center()
	var best *Device
	bestD := 0.0
	for _, d := range l.devices {
		if !d.Alive || d.Replica {
			continue
		}
		dist := d.Pos.Dist2(center)
		if best == nil || dist < bestD {
			best, bestD = d, dist
		}
	}
	return best
}
