// Ground-truth topology construction.
//
// TruthGraph is rebuilt per trial by every accuracy metric, so it is the
// hottest graph-construction path in the repo. Two things keep it fast at
// n=10⁵–10⁶:
//
//  1. The output is a frozen CSR graph (topology.Compact) built through a
//     topology.Builder: edges append to a flat pair buffer instead of
//     map/set insertion, and finalization lays them out as sorted slices.
//  2. Edge discovery is cell-centric: each grid cell is swept once, pairing
//     its devices against each other and against the forward half of the
//     cell neighborhood, so every in-range pair is tested exactly once
//     (no per-device range queries, no candidate sorting, ~5 cell-map
//     lookups per cell instead of 9 per device). The sweep runs in
//     parallel, one goroutine per stripe of grid cells: workers only read
//     the layout and write to their own pair buffer; stripes merge in
//     stripe order, and Builder.Finalize canonicalizes (sorts and dedupes)
//     the rows, so the result is bit-identical to the serial build no
//     matter how sweeps visit pairs or stripe work interleaves — the
//     differential tests in truth_test.go pin this.
//
// Builders and per-stripe pair buffers are pooled, so steady-state trial
// loops reuse their scratch allocations.
package deploy

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"snd/internal/nodeid"
	"snd/internal/topology"
)

// truthParallelMin is the device count below which the parallel build is
// not worth the goroutine and merge overhead.
const truthParallelMin = 2048

// truthBuilderPool recycles graph builders (and their edge buffers)
// across TruthGraph calls.
var truthBuilderPool = sync.Pool{New: func() any { return topology.NewBuilder() }}

// pairBufPool recycles the per-stripe edge buffers of the parallel build.
var pairBufPool = sync.Pool{New: func() any { s := make([]nodeid.Pair, 0, 4096); return &s }}

// TruthGraph returns the ground-truth tentative topology: mutual relations
// between the logical IDs of alive, non-replica devices within range r of
// each other. This is the ideal output of a perfect direct verification
// mechanism over benign hardware, and the denominator of the accuracy
// metric.
//
// The result is the frozen compact form — immutable, safe for concurrent
// readers, with sorted-slice adjacency. Edge discovery sweeps the spatial
// index cell by cell (building the index at cell size r first if the
// layout has none) and runs the sweeps in parallel across grid-cell
// stripes for large layouts; the result is identical to the serial build.
func (l *Layout) TruthGraph(r float64) *topology.Compact {
	return l.truthGraph(r, runtime.GOMAXPROCS(0))
}

// truthGraph is TruthGraph with an explicit worker count, the seam the
// parallel-vs-serial differential tests force both paths through.
func (l *Layout) truthGraph(r float64, workers int) *topology.Compact {
	l.EnsureGrid(r)
	b := truthBuilderPool.Get().(*topology.Builder)
	defer func() {
		b.Reset()
		truthBuilderPool.Put(b)
	}()
	alive := 0
	for _, d := range l.devices {
		if d.Alive && !d.Replica {
			b.AddNode(d.Node)
			alive++
		}
	}
	switch {
	case l.idx == nil:
		l.truthEdgesScan(r, b)
	case workers <= 1 || alive < truthParallelMin:
		l.truthEdgesSerial(r, b)
	default:
		l.truthEdgesParallel(r, workers, b)
	}
	return b.Finalize()
}

// truthEdgesScan is the index-free fallback (grid construction declined
// the cell size): a brute-force order walk recording each pair once from
// its lower handle.
func (l *Layout) truthEdgesScan(r float64, b *topology.Builder) {
	for _, d := range l.devices {
		if !d.Alive || d.Replica {
			continue
		}
		h := d.Handle
		l.forEachAliveUnordered(d.Pos, r, h, func(o *Device) {
			if o.Handle > h && !o.Replica {
				b.AddMutual(d.Node, o.Node)
			}
		})
	}
}

// truthSweepCell tests every unordered benign pair the cell ck is
// responsible for and calls emit for the in-range ones: pairs inside the
// cell (from the lower list index) and pairs against cells in the forward
// half of the (2m+1)² neighborhood, m = ceil(r/cell). Two devices within
// distance r sit at most m cells apart on each axis, and each cross-cell
// pair has exactly one lexicographically lower cell, so the union of all
// cell sweeps covers every pair exactly once.
func (l *Layout) truthSweepCell(ck gridCell, r float64, m int32, emit func(a, b *Device)) {
	g := l.idx
	list := g.cells[ck]
	for i, d := range list {
		if d.Replica { // cells hold only alive devices
			continue
		}
		for _, o := range list[i+1:] {
			if !o.Replica && d.Pos.InRange(o.Pos, r) {
				emit(d, o)
			}
		}
	}
	for dx := int32(0); dx <= m; dx++ {
		dyMin := -m
		if dx == 0 {
			dyMin = 1 // forward half: (0, dy>0) and (dx>0, any dy)
		}
		for dy := dyMin; dy <= m; dy++ {
			other := g.cells[gridCell{x: ck.x + dx, y: ck.y + dy}]
			if len(other) == 0 {
				continue
			}
			for _, d := range list {
				if d.Replica {
					continue
				}
				for _, o := range other {
					if !o.Replica && d.Pos.InRange(o.Pos, r) {
						emit(d, o)
					}
				}
			}
		}
	}
}

// truthReach returns the cell neighborhood radius for query radius r.
func (l *Layout) truthReach(r float64) int32 {
	return int32(math.Ceil(r / l.idx.cell))
}

// sortedCellKeys returns the grid's cell keys in (x, y) order.
// Deterministic sweep order is not needed for correctness (Finalize
// canonicalizes) but keeps per-run work and pool behavior reproducible.
func (l *Layout) sortedCellKeys() []gridCell {
	cells := make([]gridCell, 0, len(l.idx.cells))
	for ck := range l.idx.cells {
		cells = append(cells, ck)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].x != cells[j].x {
			return cells[i].x < cells[j].x
		}
		return cells[i].y < cells[j].y
	})
	return cells
}

// truthEdgesSerial sweeps the cells one by one on the calling goroutine.
func (l *Layout) truthEdgesSerial(r float64, b *topology.Builder) {
	m := l.truthReach(r)
	for _, ck := range l.sortedCellKeys() {
		l.truthSweepCell(ck, r, m, func(a, o *Device) {
			b.AddMutual(a.Node, o.Node)
		})
	}
}

// truthEdgesParallel partitions the grid's cells into one stripe per
// worker and sweeps the stripes concurrently. Workers only read layout
// state (cell lists, device fields) and append to their own buffer, so
// the build is race-free by construction, and the per-cell sweeps cover
// each unordered pair exactly once whichever stripe its owning cell
// landed in.
func (l *Layout) truthEdgesParallel(r float64, workers int, b *topology.Builder) {
	cells := l.sortedCellKeys()
	if workers > len(cells) {
		workers = len(cells)
	}
	m := l.truthReach(r)
	bufs := make([]*[]nodeid.Pair, workers)
	var wg sync.WaitGroup
	chunk := (len(cells) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cells))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			bp := pairBufPool.Get().(*[]nodeid.Pair)
			pairs := (*bp)[:0]
			for _, ck := range cells[lo:hi] {
				l.truthSweepCell(ck, r, m, func(a, o *Device) {
					pairs = append(pairs,
						nodeid.Pair{From: a.Node, To: o.Node},
						nodeid.Pair{From: o.Node, To: a.Node})
				})
			}
			*bp = pairs
			bufs[w] = bp
		}(w, lo, hi)
	}
	wg.Wait()
	for _, bp := range bufs {
		if bp == nil {
			continue
		}
		b.AddPairs(*bp)
		*bp = (*bp)[:0]
		pairBufPool.Put(bp)
	}
}
