// Uniform-grid spatial index behind the layout's range queries.
//
// Every experiment pays for radius scans constantly: the radio medium
// resolves the receivers of each transmission, TruthGraph rebuilds the
// ground-truth neighbor graph per trial, and the replica-detection
// baselines index device adjacency. Scanning all n devices per query makes
// each of those O(n²); the grid makes them O(n + k) for k reported
// devices, which is what lets sweeps reach the node counts the
// secure-neighbor-discovery literature evaluates at.
//
// The index buckets alive devices into square cells keyed by
// floor(pos/cell). With cell size equal to the radio range (the common
// query radius), a range query inspects the 3×3 cell neighborhood —
// constant cells, ~9·density candidates — but correctness never depends on
// the cell size: a query of radius r inspects every cell overlapping the
// query disk, however many that is.
//
// Iteration-order contract: the exported queries report devices in
// deployment order (ascending Handle), exactly the order the pre-index
// brute-force scans used — a query collects the matches of the few
// overlapping cells into a pooled scratch buffer and sorts it, so
// steady-state queries allocate nothing. Internal consumers whose output
// is order-independent (the truth-graph builder, whose Finalize
// canonicalizes) use the unordered sweep and skip the sort.
//
// Cells hold *Device directly: a range query touches every candidate in
// the neighborhood, and resolving each through a handle map was the
// single hottest line of million-node truth-graph builds.

package deploy

import (
	"cmp"
	"math"
	"slices"
	"sync"

	"snd/internal/geometry"
	"snd/internal/nodeid"
)

// gridCell addresses one square bucket of the index.
type gridCell struct{ x, y int32 }

// gridIndex is the uniform grid. It holds only alive devices: insert adds,
// Kill removes, Move rebuckets. Dead devices never match a query, so
// keeping them out of the cells makes long-lived layouts with churn cheap.
type gridIndex struct {
	cell  float64
	cells map[gridCell][]*Device
}

func newGridIndex(cell float64) *gridIndex {
	return &gridIndex{cell: cell, cells: make(map[gridCell][]*Device)}
}

func (g *gridIndex) cellOf(p geometry.Point) gridCell {
	return gridCell{x: int32(math.Floor(p.X / g.cell)), y: int32(math.Floor(p.Y / g.cell))}
}

func (g *gridIndex) add(d *Device) {
	k := g.cellOf(d.Pos)
	g.cells[k] = append(g.cells[k], d)
}

func (g *gridIndex) remove(d *Device) {
	k := g.cellOf(d.Pos)
	ds := g.cells[k]
	for i, o := range ds {
		if o == d {
			g.cells[k] = append(ds[:i], ds[i+1:]...)
			break
		}
	}
	if len(g.cells[k]) == 0 {
		delete(g.cells, k)
	}
}

// EnsureGrid builds the spatial index with the given cell size if the
// layout does not have one yet; with an index already present it is a
// no-op, whatever the cell size — queries are correct under any cell size,
// so the first builder (typically radio.NewMedium, with the radio range)
// wins and later callers share it. Non-positive or non-finite cell sizes
// are ignored. Deploy, Kill, and Move maintain the index incrementally
// from then on.
func (l *Layout) EnsureGrid(cell float64) {
	if l.idx != nil || !(cell > 0) || math.IsInf(cell, 0) {
		return
	}
	idx := newGridIndex(cell)
	for _, d := range l.devices {
		if d.Alive {
			idx.add(d)
		}
	}
	l.idx = idx
}

// HasGrid reports whether the layout carries a spatial index.
func (l *Layout) HasGrid() bool { return l.idx != nil }

// scratchPool recycles the per-query candidate buffers so grid-backed
// queries allocate nothing in steady state, and stay safe under the
// concurrent readers the radio medium serializes behind its own lock as
// well as reentrant queries issued from inside a callback.
var scratchPool = sync.Pool{New: func() any { s := make([]*Device, 0, 128); return &s }}

// forEachAlive invokes fn for every alive device within distance r of
// center, excluding skip, in deployment order. Without an index it falls
// back to the brute-force scan over l.devices (already deployment-ordered).
func (l *Layout) forEachAlive(center geometry.Point, r float64, skip Handle, fn func(*Device)) {
	if l.idx == nil {
		l.forEachAliveUnordered(center, r, skip, fn)
		return
	}
	if r < 0 {
		return
	}
	sp := scratchPool.Get().(*[]*Device)
	buf := (*sp)[:0]
	l.forEachAliveUnordered(center, r, skip, func(d *Device) { buf = append(buf, d) })
	slices.SortFunc(buf, func(a, b *Device) int { return cmp.Compare(a.Handle, b.Handle) })
	for _, d := range buf {
		fn(d)
	}
	*sp = buf[:0]
	scratchPool.Put(sp)
}

// forEachAliveUnordered is forEachAlive without the deployment-order
// contract: matches are reported as the cell scan encounters them. It
// skips the candidate buffer and the sort, which makes it the right sweep
// for consumers whose output cannot depend on visit order — the
// truth-graph builder's Finalize canonicalizes, so it uses this directly.
func (l *Layout) forEachAliveUnordered(center geometry.Point, r float64, skip Handle, fn func(*Device)) {
	if r < 0 {
		return
	}
	if l.idx == nil {
		for _, d := range l.devices {
			if d.Handle != skip && d.Alive && center.InRange(d.Pos, r) {
				fn(d)
			}
		}
		return
	}
	g := l.idx
	minX := int32(math.Floor((center.X - r) / g.cell))
	maxX := int32(math.Floor((center.X + r) / g.cell))
	minY := int32(math.Floor((center.Y - r) / g.cell))
	maxY := int32(math.Floor((center.Y + r) / g.cell))
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			for _, d := range g.cells[gridCell{x: cx, y: cy}] {
				// Cells hold only alive devices; the flag re-check guards
				// callers that kill from inside a callback of the ordered
				// wrapper (which buffered the candidate list beforehand).
				if d.Handle != skip && d.Alive && center.InRange(d.Pos, r) {
					fn(d)
				}
			}
		}
	}
}

// ForEachInRange invokes fn for every alive device within radio range r of
// device h — excluding h itself, including co-located replicas of the same
// node — in deployment order (ascending Handle). It is the iterator form
// of InRange: no candidate slice is materialized, and with a grid index
// present the query costs O(k) for k matches instead of O(n).
//
// fn must not mutate the layout; mutations made from inside the callback
// leave the iteration undefined.
func (l *Layout) ForEachInRange(h Handle, r float64, fn func(*Device)) {
	self := l.Device(h)
	if self == nil {
		return
	}
	l.forEachAlive(self.Pos, r, h, fn)
}

// ForEachAliveIn invokes fn for every alive device inside the circle
// (inclusive boundary, same unit-disk rule as Point.InRange), in
// deployment order. fn must not mutate the layout.
func (l *Layout) ForEachAliveIn(c geometry.Circle, fn func(*Device)) {
	l.forEachAlive(c.Center, c.Radius, NoHandle, fn)
}

// ForEachDeviceOf invokes fn for every device claiming logical node id, in
// deployment order — the iterator form of DevicesOf for hot paths (e.g.
// the georouting reach predicate) that only probe, and would otherwise
// allocate and sort a fresh slice per call. fn must not mutate the layout.
func (l *Layout) ForEachDeviceOf(id nodeid.ID, fn func(*Device)) {
	if id >= 1 && int(id) <= len(l.primary) {
		fn(l.devices[l.primary[id-1]-1])
	}
	for _, h := range l.replicas[id] {
		fn(l.devices[h-1])
	}
}

// Move updates device h's current position — the attacker physically
// relocating hardware — keeping the spatial index consistent. The
// device's Origin is unchanged, exactly as the d-safety analysis requires.
// Once a layout carries an index, positions must change through Move, not
// by writing Device.Pos directly.
func (l *Layout) Move(h Handle, pos geometry.Point) {
	d := l.Device(h)
	if d == nil {
		return
	}
	if l.idx != nil && d.Alive {
		l.idx.remove(d)
		d.Pos = pos
		l.idx.add(d)
		return
	}
	d.Pos = pos
}
