package deploy

import (
	"math"
	"math/rand"

	"snd/internal/geometry"
)

// Sampler draws deployment positions inside a field.
type Sampler interface {
	// Name identifies the sampler in experiment output.
	Name() string
	// Sample returns n positions inside field.
	Sample(field geometry.Rect, n int, rng *rand.Rand) []geometry.Point
}

// Uniform scatters nodes with a uniform probability density, the paper's
// deployment model ("sensor nodes are randomly deployed with a uniform
// probability density function").
type Uniform struct{}

var _ Sampler = Uniform{}

// Name implements Sampler.
func (Uniform) Name() string { return "uniform" }

// Sample implements Sampler.
func (Uniform) Sample(field geometry.Rect, n int, rng *rand.Rand) []geometry.Point {
	pts := make([]geometry.Point, n)
	for i := range pts {
		pts[i] = geometry.Point{
			X: field.Min.X + rng.Float64()*field.Width(),
			Y: field.Min.Y + rng.Float64()*field.Height(),
		}
	}
	return pts
}

// GridJitter places nodes on a near-square grid, each perturbed by uniform
// jitter of ±Jitter meters per axis — a common model for hand-placed or
// aerially dropped deployments with rough planning.
type GridJitter struct {
	// Jitter is the maximum per-axis displacement in meters.
	Jitter float64
}

var _ Sampler = GridJitter{}

// Name implements Sampler.
func (GridJitter) Name() string { return "grid-jitter" }

// Sample implements Sampler.
func (s GridJitter) Sample(field geometry.Rect, n int, rng *rand.Rand) []geometry.Point {
	if n == 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * field.Width() / math.Max(field.Height(), 1e-9))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	dx := field.Width() / float64(cols)
	dy := field.Height() / float64(rows)
	pts := make([]geometry.Point, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		p := geometry.Point{
			X: field.Min.X + (float64(c)+0.5)*dx + (rng.Float64()*2-1)*s.Jitter,
			Y: field.Min.Y + (float64(r)+0.5)*dy + (rng.Float64()*2-1)*s.Jitter,
		}
		pts = append(pts, field.Clamp(p))
	}
	return pts
}

// Within restricts an inner sampler to a sub-region of the field, for
// targeted (re)deployment — e.g. reinforcing one corner of the network or
// steering fresh nodes into an attacker's staging area in experiments.
type Within struct {
	// Region is intersected with the field before sampling.
	Region geometry.Rect
	// Inner draws the positions (default Uniform).
	Inner Sampler
}

var _ Sampler = Within{}

// Name implements Sampler.
func (w Within) Name() string { return "within" }

// Sample implements Sampler.
func (w Within) Sample(field geometry.Rect, n int, rng *rand.Rand) []geometry.Point {
	region := geometry.Rect{
		Min: field.Clamp(w.Region.Min),
		Max: field.Clamp(w.Region.Max),
	}
	inner := w.Inner
	if inner == nil {
		inner = Uniform{}
	}
	return inner.Sample(region, n, rng)
}

// Clustered drops nodes in Gaussian clusters around uniformly chosen
// centers, modeling group deployment from a small number of drop points.
type Clustered struct {
	// Clusters is the number of drop points (≥ 1).
	Clusters int
	// Sigma is the per-axis standard deviation around each drop point.
	Sigma float64
}

var _ Sampler = Clustered{}

// Name implements Sampler.
func (Clustered) Name() string { return "clustered" }

// Sample implements Sampler.
func (s Clustered) Sample(field geometry.Rect, n int, rng *rand.Rand) []geometry.Point {
	k := s.Clusters
	if k < 1 {
		k = 1
	}
	centers := Uniform{}.Sample(field, k, rng)
	pts := make([]geometry.Point, n)
	for i := range pts {
		c := centers[i%k]
		p := geometry.Point{
			X: c.X + rng.NormFloat64()*s.Sigma,
			Y: c.Y + rng.NormFloat64()*s.Sigma,
		}
		pts[i] = field.Clamp(p)
	}
	return pts
}
