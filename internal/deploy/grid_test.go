package deploy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"snd/internal/geometry"
	"snd/internal/topology"
)

// bruteInRange is the independent oracle: a literal transcription of the
// pre-grid linear scan, sharing no code with the index under test.
func bruteInRange(l *Layout, h Handle, r float64) []Handle {
	self := l.Device(h)
	if self == nil {
		return nil
	}
	var out []Handle
	for _, d := range l.devices {
		if d.Handle == h {
			continue
		}
		if d.Alive && self.Pos.InRange(d.Pos, r) {
			out = append(out, d.Handle)
		}
	}
	return out
}

func bruteAliveIn(l *Layout, c geometry.Circle) []Handle {
	var out []Handle
	for _, d := range l.devices {
		if d.Alive && c.Center.InRange(d.Pos, c.Radius) {
			out = append(out, d.Handle)
		}
	}
	return out
}

func gridInRange(l *Layout, h Handle, r float64) []Handle {
	var out []Handle
	l.ForEachInRange(h, r, func(d *Device) { out = append(out, d.Handle) })
	return out
}

func gridAliveIn(l *Layout, c geometry.Circle) []Handle {
	var out []Handle
	l.ForEachAliveIn(c, func(d *Device) { out = append(out, d.Handle) })
	return out
}

func handlesEqual(a, b []Handle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomChurnLayout builds a layout with deployments across rounds,
// replicas of random nodes, random kills, and random moves — exercising
// every mutation the index must track. withGrid controls whether the
// index exists from the start (so the mutations maintain it
// incrementally) or is never built (brute-force path).
func randomChurnLayout(seed int64, n int, cell float64, withGrid bool) *Layout {
	rng := rand.New(rand.NewSource(seed))
	l := NewLayout(geometry.NewField(100, 100))
	if withGrid {
		l.EnsureGrid(cell)
	}
	randPoint := func() geometry.Point {
		return geometry.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < n/3; i++ {
			l.Deploy(randPoint(), round)
		}
		// Replicate a few random nodes at fresh positions.
		for i := 0; i < n/20; i++ {
			victim := Handle(1 + rng.Intn(l.Count()))
			if d := l.Device(victim); d != nil {
				l.DeployReplica(d.Node, randPoint(), round)
			}
		}
		// Kill some devices (replicas included), some of them twice.
		for i := 0; i < n/10; i++ {
			l.Kill(Handle(1 + rng.Intn(l.Count())))
		}
		// And physically relocate a few.
		for i := 0; i < n/20; i++ {
			l.Move(Handle(1+rng.Intn(l.Count())), randPoint())
		}
	}
	return l
}

// TestGridMatchesBruteForce is the differential property test behind the
// bit-identical claim: over random layouts with replicas, kills, and
// moves, every grid query must report exactly the devices the brute-force
// oracle reports, in exactly the same (deployment) order — including at
// boundary radii, sub- and super-cell radii, and radius 0.
func TestGridMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			// Cell size deliberately varies — correctness must not depend
			// on it matching the query radius.
			cell := []float64{5, 12.5, 25, 60}[int(seed)%4]
			l := randomChurnLayout(seed, 120, cell, true)
			oracle := randomChurnLayout(seed, 120, cell, false)
			if !l.HasGrid() || oracle.HasGrid() {
				t.Fatal("grid/oracle setup inverted")
			}

			radii := []float64{0, 1, 7.3, 12.5, 25, 50, 200}
			// Exact inter-device distances probe the inclusive boundary:
			// a query at that exact radius must include the device.
			a, b := l.Device(1), l.Device(2)
			if a != nil && b != nil {
				radii = append(radii, a.Pos.Dist(b.Pos))
			}
			for _, r := range radii {
				for _, d := range l.devices {
					h := d.Handle
					got := gridInRange(l, h, r)
					want := bruteInRange(oracle, h, r)
					if !handlesEqual(got, want) {
						t.Fatalf("r=%g h=%d: grid %v != brute %v", r, h, got, want)
					}
				}
				for i := 0; i < 10; i++ {
					c := geometry.Circle{
						Center: geometry.Point{X: rng.Float64()*140 - 20, Y: rng.Float64()*140 - 20},
						Radius: r,
					}
					got := gridAliveIn(l, c)
					want := bruteAliveIn(oracle, c)
					if !handlesEqual(got, want) {
						t.Fatalf("circle %+v: grid %v != brute %v", c, got, want)
					}
				}
			}

			// TruthGraph through the grid == TruthGraph via brute force.
			for _, r := range []float64{10, 25, 50} {
				if !l.TruthGraph(r).Equal(oracle.TruthGraph(r)) {
					t.Fatalf("TruthGraph(%g) differs between grid and brute force", r)
				}
			}
		})
	}
}

// TestEnsureGridLateBuildMatchesIncremental checks the two ways an index
// comes to exist — built over an already-mutated layout, or built empty
// and maintained through every mutation — yield identical query results.
func TestEnsureGridLateBuildMatchesIncremental(t *testing.T) {
	incremental := randomChurnLayout(42, 120, 25, true)
	late := randomChurnLayout(42, 120, 25, false)
	late.EnsureGrid(25)
	for _, d := range incremental.devices {
		h := d.Handle
		if got, want := gridInRange(incremental, h, 25), gridInRange(late, h, 25); !handlesEqual(got, want) {
			t.Fatalf("h=%d: incremental %v != late-build %v", h, got, want)
		}
	}
}

func TestEnsureGridRejectsBadCellSizes(t *testing.T) {
	l := newTestLayout()
	for _, cell := range []float64{0, -1} {
		l.EnsureGrid(cell)
		if l.HasGrid() {
			t.Fatalf("EnsureGrid(%g) built an index", cell)
		}
	}
	l.EnsureGrid(50)
	if !l.HasGrid() {
		t.Fatal("EnsureGrid(50) did not build an index")
	}
}

// TestGridQueryAllocatesNothing pins the zero-allocation contract of the
// iterator on the grid path.
func TestGridQueryAllocatesNothing(t *testing.T) {
	l := NewLayout(geometry.NewField(100, 100))
	l.EnsureGrid(25)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		l.Deploy(geometry.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, 0)
	}
	count := 0
	allocs := testing.AllocsPerRun(100, func() {
		l.ForEachInRange(1, 25, func(*Device) { count++ })
	})
	if allocs != 0 {
		t.Errorf("ForEachInRange allocates %.1f per query, want 0", allocs)
	}
	if count == 0 {
		t.Fatal("query matched nothing; test is vacuous")
	}
}

// TestTruthGraphUnchangedByGrid pins that building the graph through the
// index reproduces the exact relation set of a hand-rolled pairwise scan.
func TestTruthGraphUnchangedByGrid(t *testing.T) {
	l := randomChurnLayout(5, 150, 25, true)
	want := topology.New()
	for _, d := range l.devices {
		if !d.Alive || d.Replica {
			continue
		}
		want.AddNode(d.Node)
		for _, e := range l.devices {
			if e.Handle == d.Handle || !e.Alive || e.Replica {
				continue
			}
			if d.Pos.InRange(e.Pos, 25) {
				want.AddMutual(d.Node, e.Node)
			}
		}
	}
	if got := l.TruthGraph(25); !got.Equal(want) {
		t.Fatal("TruthGraph over the grid differs from the pairwise scan")
	}
}

// benchQueryLayout deploys n devices at constant density (field side
// grows with √n) so the neighborhood size k stays fixed while n grows —
// the regime where O(n) and O(k) queries diverge.
func benchQueryLayout(n int, withGrid bool) *Layout {
	rng := rand.New(rand.NewSource(1))
	field := 10 * math.Sqrt(float64(n))
	l := NewLayout(geometry.NewField(field, field))
	if withGrid {
		l.EnsureGrid(50)
	}
	for i := 0; i < n; i++ {
		l.Deploy(geometry.Point{X: rng.Float64() * field, Y: rng.Float64() * field}, 0)
	}
	return l
}

func BenchmarkForEachInRangeGrid(b *testing.B) {
	for _, n := range []int{200, 2000, 10000} {
		l := benchQueryLayout(n, true)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := Handle(1 + i%n)
				l.ForEachInRange(h, 50, func(*Device) {})
			}
		})
	}
}

func BenchmarkForEachInRangeBrute(b *testing.B) {
	for _, n := range []int{200, 2000, 10000} {
		l := benchQueryLayout(n, false)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := Handle(1 + i%n)
				l.ForEachInRange(h, 50, func(*Device) {})
			}
		})
	}
}
