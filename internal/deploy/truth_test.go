package deploy

import (
	"math/rand"
	"reflect"
	"testing"

	"snd/internal/geometry"
	"snd/internal/topology"
)

// assertBitIdentical fails unless the two compact graphs have identical
// vertex lists and identical adjacency rows — representation-level
// equality, stronger than set equality.
func assertBitIdentical(t *testing.T, want, got *topology.Compact) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes(), got.Nodes()) {
		t.Fatalf("vertex lists differ: %d vs %d nodes", want.NumNodes(), got.NumNodes())
	}
	if want.NumRelations() != got.NumRelations() {
		t.Fatalf("relation counts differ: %d vs %d", want.NumRelations(), got.NumRelations())
	}
	for _, u := range want.Nodes() {
		if !reflect.DeepEqual(want.OutIDs(u), got.OutIDs(u)) {
			t.Fatalf("row of %v differs: %v vs %v", u, want.OutIDs(u), got.OutIDs(u))
		}
	}
}

// TestTruthGraphParallelMatchesSerial pins the determinism claim: the
// parallel per-cell build must be bit-identical to the serial order-walk,
// for any worker count, on a layout large enough to actually take the
// parallel path (alive ≥ truthParallelMin) and messy enough to exercise
// replicas and dead devices.
func TestTruthGraphParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewLayout(geometry.NewField(600, 600))
	l.DeploySampled(Uniform{}, 2*truthParallelMin, rng, 0)
	// Replicas of some nodes, planted anywhere.
	for i := 0; i < 200; i++ {
		victim := l.Devices()[rng.Intn(l.Count())]
		if victim.Replica {
			continue
		}
		pos := geometry.Point{X: rng.Float64() * 600, Y: rng.Float64() * 600}
		if _, err := l.DeployReplica(victim.Node, pos, 1); err != nil {
			t.Fatal(err)
		}
	}
	l.KillFraction(0.1, rng)

	for _, r := range []float64{12, 35} {
		serial := l.truthGraph(r, 1)
		for _, workers := range []int{2, 3, 8, 64} {
			par := l.truthGraph(r, workers)
			if !par.Equal(serial) {
				t.Fatalf("r=%v workers=%d: parallel build not Equal to serial", r, workers)
			}
			assertBitIdentical(t, serial, par)
		}
		if serial.NumRelations() == 0 {
			t.Fatalf("r=%v: degenerate test, no relations", r)
		}
	}
}

// TestTruthGraphMatchesBruteForce cross-checks the grid-swept builder
// against the O(n²) definition on a small messy layout.
func TestTruthGraphMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLayout(geometry.NewField(200, 200))
	l.DeploySampled(Uniform{}, 300, rng, 0)
	for i := 0; i < 20; i++ {
		victim := l.Devices()[rng.Intn(l.Count())]
		if victim.Replica {
			continue
		}
		pos := geometry.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		if _, err := l.DeployReplica(victim.Node, pos, 1); err != nil {
			t.Fatal(err)
		}
	}
	l.KillFraction(0.15, rng)

	const r = 40
	want := topology.New()
	devices := l.Devices()
	for _, d := range devices {
		if d.Alive && !d.Replica {
			want.AddNode(d.Node)
		}
	}
	for i, a := range devices {
		if !a.Alive || a.Replica {
			continue
		}
		for _, b := range devices[i+1:] {
			if !b.Alive || b.Replica {
				continue
			}
			if a.Pos.Dist(b.Pos) <= r {
				want.AddMutual(a.Node, b.Node)
			}
		}
	}
	got := l.TruthGraph(r)
	if !got.Equal(want) {
		t.Fatalf("truth graph differs from O(n²) definition: %d/%d vs %d/%d",
			got.NumNodes(), got.NumRelations(), want.NumNodes(), want.NumRelations())
	}
}

// TestTruthGraphPooledRebuildsStable: repeated TruthGraph calls recycle
// pooled builders and buffers; later calls must reproduce the same graph
// and earlier results must stay valid (no storage sharing with the pool).
func TestTruthGraphPooledRebuildsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLayout(geometry.NewField(300, 300))
	l.DeploySampled(Uniform{}, 500, rng, 0)
	first := l.TruthGraph(30)
	edges := first.NumRelations()
	for i := 0; i < 5; i++ {
		g := l.TruthGraph(30)
		if !g.Equal(first) {
			t.Fatalf("rebuild %d differs", i)
		}
	}
	if first.NumRelations() != edges {
		t.Fatal("earlier graph mutated by pooled rebuilds")
	}
}

// TestTruthGraphMillionSmoke builds and validates against a million-node
// truth graph end to end — the scale target of the compact representation.
// It is a smoke test: skipped in -short runs and under the race detector
// (where the 10⁶-device build is an order of magnitude slower).
func TestTruthGraphMillionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke test skipped in short mode")
	}
	if raceEnabled {
		t.Skip("million-node smoke test skipped under the race detector")
	}
	const (
		n = 1_000_000
		r = 10 // ~π neighbors at density 1/100 m²
	)
	rng := rand.New(rand.NewSource(1))
	l := NewLayout(geometry.NewField(10000, 10000))
	l.DeploySampled(Uniform{}, n, rng, 0)
	g := l.TruthGraph(r)
	if g.NumNodes() != n {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
	}
	if g.NumRelations() == 0 {
		t.Fatal("no relations at R=10")
	}
	// The truth graph is symmetric by construction; spot-check a sample.
	for _, u := range g.Nodes()[:1000] {
		for _, v := range g.OutIDs(u) {
			if !g.HasRelation(v, u) {
				t.Fatalf("asymmetric relation %v->%v", u, v)
			}
		}
	}
	// Run the validation sweep the accuracy metric performs, at full scale.
	sampled := 0
	for _, u := range g.Nodes()[:10000] {
		for _, v := range g.OutIDs(u) {
			sampled += g.CommonOut(u, v)
		}
	}
	_ = sampled
}
