package deploy

import (
	"math"
	"math/rand"
	"testing"

	"snd/internal/geometry"
	"snd/internal/nodeid"
)

func newTestLayout() *Layout {
	return NewLayout(geometry.NewField(100, 100))
}

func TestDeployAssignsFreshIdentities(t *testing.T) {
	l := newTestLayout()
	a := l.Deploy(geometry.Point{X: 1, Y: 1}, 0)
	b := l.Deploy(geometry.Point{X: 2, Y: 2}, 0)
	if a.Node == b.Node {
		t.Error("two deployments share a logical ID")
	}
	if a.Handle == b.Handle {
		t.Error("two deployments share a handle")
	}
	if a.Node == nodeid.None || a.Handle == NoHandle {
		t.Error("reserved identifiers assigned")
	}
	if !a.Alive || a.Replica {
		t.Errorf("fresh device state = %+v", a)
	}
	if a.Origin != a.Pos {
		t.Error("origin differs from deployment position")
	}
}

func TestDeployReplica(t *testing.T) {
	l := newTestLayout()
	orig := l.Deploy(geometry.Point{X: 10, Y: 10}, 0)
	rep, err := l.DeployReplica(orig.Node, geometry.Point{X: 90, Y: 90}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Node != orig.Node {
		t.Error("replica has different logical ID")
	}
	if rep.Handle == orig.Handle {
		t.Error("replica shares handle")
	}
	if !rep.Replica {
		t.Error("replica not flagged")
	}
	devs := l.DevicesOf(orig.Node)
	if len(devs) != 2 {
		t.Fatalf("DevicesOf = %d devices", len(devs))
	}
	if devs[0].Replica || !devs[1].Replica {
		t.Error("originals-first ordering violated")
	}
	if p := l.Primary(orig.Node); p == nil || p.Handle != orig.Handle {
		t.Error("Primary did not return the original device")
	}
}

func TestDeployReplicaUnknownNode(t *testing.T) {
	l := newTestLayout()
	if _, err := l.DeployReplica(99, geometry.Point{}, 0); err == nil {
		t.Error("replica of unknown node accepted")
	}
}

func TestKillAndAliveCount(t *testing.T) {
	l := newTestLayout()
	a := l.Deploy(geometry.Point{X: 1, Y: 1}, 0)
	l.Deploy(geometry.Point{X: 2, Y: 2}, 0)
	if l.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d", l.AliveCount())
	}
	l.Kill(a.Handle)
	if l.AliveCount() != 1 {
		t.Errorf("AliveCount after kill = %d", l.AliveCount())
	}
	if l.Device(a.Handle).Alive {
		t.Error("device still alive")
	}
	l.Kill(Handle(999)) // unknown handle is a no-op
}

func TestKillFraction(t *testing.T) {
	l := newTestLayout()
	rng := rand.New(rand.NewSource(1))
	l.DeploySampled(Uniform{}, 100, rng, 0)
	killed := l.KillFraction(0.3, rng)
	if len(killed) != 30 {
		t.Errorf("killed %d, want 30", len(killed))
	}
	if l.AliveCount() != 70 {
		t.Errorf("alive = %d, want 70", l.AliveCount())
	}
	// Replicas are never killed by battery depletion.
	d := l.Devices()[0]
	if !d.Alive {
		d = l.Devices()[1]
	}
	if _, err := l.DeployReplica(d.Node, geometry.Point{X: 5, Y: 5}, 1); err != nil {
		t.Fatal(err)
	}
	before := l.AliveCount()
	l.KillFraction(1.0, rng)
	if got := l.AliveCount(); got != 1 {
		t.Errorf("after killing all originals alive = %d (before %d), want only the replica", got, before)
	}
}

func TestInRange(t *testing.T) {
	l := newTestLayout()
	a := l.Deploy(geometry.Point{X: 0, Y: 0}, 0)
	b := l.Deploy(geometry.Point{X: 30, Y: 0}, 0)
	c := l.Deploy(geometry.Point{X: 80, Y: 0}, 0)
	inRange := func(h Handle, r float64) []*Device {
		var out []*Device
		l.ForEachInRange(h, r, func(d *Device) { out = append(out, d) })
		return out
	}
	got := inRange(a.Handle, 50)
	if len(got) != 1 || got[0].Handle != b.Handle {
		t.Errorf("in range = %v", got)
	}
	l.Kill(b.Handle)
	if got := inRange(a.Handle, 50); len(got) != 0 {
		t.Errorf("dead device still in range: %v", got)
	}
	_ = c
	if got := inRange(Handle(999), 50); got != nil {
		t.Error("unknown handle returned devices")
	}
	if got := inRange(a.Handle, 80); len(got) != 1 || got[0].Handle != c.Handle {
		t.Errorf("in range at r=80 = %v, want just c", got)
	}
}

func TestTruthGraph(t *testing.T) {
	l := newTestLayout()
	a := l.Deploy(geometry.Point{X: 0, Y: 0}, 0)
	b := l.Deploy(geometry.Point{X: 30, Y: 0}, 0)
	c := l.Deploy(geometry.Point{X: 90, Y: 0}, 0)
	g := l.TruthGraph(50)
	if !g.HasMutual(a.Node, b.Node) {
		t.Error("in-range pair missing")
	}
	if g.HasRelation(a.Node, c.Node) {
		t.Error("out-of-range pair present")
	}
	if !g.HasMutual(b.Node, c.Node) { // 60 apart? no: 30->90 is 60 > 50
		// distance 60 > 50: must NOT be neighbors
	} else {
		t.Error("pair at 60 m related with R=50")
	}
	// Replicas never enter the truth graph.
	if _, err := l.DeployReplica(a.Node, geometry.Point{X: 91, Y: 0}, 1); err != nil {
		t.Fatal(err)
	}
	g2 := l.TruthGraph(50)
	if g2.HasRelation(a.Node, c.Node) || g2.HasRelation(c.Node, a.Node) {
		t.Error("replica created truth relations")
	}
	// Dead devices drop out.
	l.Kill(b.Handle)
	if g3 := l.TruthGraph(50); g3.HasNode(b.Node) {
		t.Error("dead node in truth graph")
	}
}

func TestClosestToCenter(t *testing.T) {
	l := newTestLayout()
	l.Deploy(geometry.Point{X: 10, Y: 10}, 0)
	center := l.Deploy(geometry.Point{X: 49, Y: 51}, 0)
	l.Deploy(geometry.Point{X: 90, Y: 90}, 0)
	if got := l.ClosestToCenter(); got.Handle != center.Handle {
		t.Errorf("ClosestToCenter = %+v", got)
	}
	// Replicas at dead center do not count.
	if _, err := l.DeployReplica(center.Node, geometry.Point{X: 50, Y: 50}, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.ClosestToCenter(); got.Replica {
		t.Error("replica chosen as center node")
	}
	if NewLayout(geometry.NewField(10, 10)).ClosestToCenter() != nil {
		t.Error("empty layout returned a device")
	}
}

func TestNodeIDsSorted(t *testing.T) {
	l := newTestLayout()
	for i := 0; i < 5; i++ {
		l.Deploy(geometry.Point{X: float64(i), Y: 0}, 0)
	}
	ids := l.NodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("NodeIDs not ascending: %v", ids)
		}
	}
}

func TestUniformSamplerInField(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	field := geometry.NewField(100, 50)
	pts := Uniform{}.Sample(field, 500, rng)
	if len(pts) != 500 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
	// Rough uniformity: mean near center.
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	mx /= 500
	my /= 500
	if math.Abs(mx-50) > 5 || math.Abs(my-25) > 3 {
		t.Errorf("sample mean (%v, %v) far from center", mx, my)
	}
}

func TestGridJitterSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	field := geometry.NewField(100, 100)
	pts := GridJitter{Jitter: 2}.Sample(field, 49, rng)
	if len(pts) != 49 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
	// Nearest-neighbor distances should cluster near the grid pitch
	// (~14.3 m for 7x7 over 100 m), far from what uniform sampling yields.
	minD := math.Inf(1)
	for i := range pts {
		for j := range pts {
			if i != j {
				if d := pts[i].Dist(pts[j]); d < minD {
					minD = d
				}
			}
		}
	}
	if minD < 5 {
		t.Errorf("grid-jitter min spacing %v too small", minD)
	}
	if got := (GridJitter{}).Sample(field, 0, rng); got != nil {
		t.Error("n=0 returned points")
	}
}

func TestClusteredSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	field := geometry.NewField(1000, 1000)
	pts := Clustered{Clusters: 3, Sigma: 10}.Sample(field, 300, rng)
	if len(pts) != 300 {
		t.Fatalf("n = %d", len(pts))
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
	// Clustered points have far smaller average pairwise distance within
	// the modal cluster than the field diagonal.
	var within int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			if pts[i].Dist(pts[j]) < 100 {
				within++
			}
		}
	}
	if within == 0 {
		t.Error("no tight pairs found; clustering ineffective")
	}
	// Degenerate cluster count is clamped.
	degenerate := Clustered{Clusters: 0, Sigma: 1}
	if got := degenerate.Sample(field, 10, rng); len(got) != 10 {
		t.Errorf("clamped sampler returned %d points", len(got))
	}
}

func TestDeploySampledRounds(t *testing.T) {
	l := newTestLayout()
	rng := rand.New(rand.NewSource(6))
	first := l.DeploySampled(Uniform{}, 10, rng, 0)
	second := l.DeploySampled(Uniform{}, 5, rng, 1)
	if len(first) != 10 || len(second) != 5 {
		t.Fatalf("deployed %d + %d", len(first), len(second))
	}
	for _, d := range second {
		if d.Round != 1 {
			t.Errorf("round = %d, want 1", d.Round)
		}
	}
	if l.Count() != 15 {
		t.Errorf("Count = %d", l.Count())
	}
}

func TestSamplerNames(t *testing.T) {
	for _, s := range []Sampler{Uniform{}, GridJitter{}, Clustered{}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func BenchmarkTruthGraph200(b *testing.B) {
	l := newTestLayout()
	rng := rand.New(rand.NewSource(7))
	l.DeploySampled(Uniform{}, 200, rng, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = l.TruthGraph(50)
	}
}
