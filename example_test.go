package snd_test

import (
	"fmt"

	"snd"
)

// ExampleNewSimulation runs the paper's Figure 3 setup once and reports
// the validated-neighbor accuracy.
func ExampleNewSimulation() {
	s, err := snd.NewSimulation(snd.SimParams{Nodes: 200, Threshold: 30, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("center-node accuracy at t=30: %.2f\n", s.CenterAccuracy())
	// Output:
	// center-node accuracy at t=30: 1.00
}

// ExampleNewNode walks the protocol on a single node: discovery, record
// authentication, threshold validation, and master key erasure.
func ExampleNewNode() {
	master, err := snd.NewMasterKey(nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg := snd.ProtocolConfig{Threshold: 1} // need 2 common neighbors

	u, _ := snd.NewNode(10, master, cfg)
	_ = u.BeginDiscovery(snd.NewNodeSet(1, 2, 3))

	// Peers 1 and 2 share neighbors {3, 10}∪ with u; peer 3 is a loner.
	for id, neighbors := range map[snd.NodeID]snd.NodeSet{
		1: snd.NewNodeSet(10, 2, 3),
		2: snd.NewNodeSet(10, 1, 3),
		3: snd.NewNodeSet(10),
	} {
		peer, _ := snd.NewNode(id, master, cfg)
		_ = peer.BeginDiscovery(neighbors)
		_ = u.ReceiveBindingRecord(peer.Record())
	}
	res, _ := u.FinishDiscovery()

	fmt.Println("functional neighbors:", u.Functional().Sorted())
	fmt.Println("commitments issued:", len(res.Commitments))
	fmt.Println("master key erased:", !u.HoldsMasterKey())
	// Output:
	// functional neighbors: [n1 n2]
	// commitments issued: 2
	// master key erased: true
}

// ExampleAnalyticalModel evaluates the paper's Section 4.4.1 closed form.
func ExampleAnalyticalModel() {
	m := snd.AnalyticalModel{Density: 0.02, Range: 50} // Figure 3's setup
	fmt.Printf("expected neighbors: %.0f\n", m.ExpectedNeighbors())
	fmt.Printf("accuracy at t=30:  %.2f\n", m.Accuracy(30))
	fmt.Printf("accuracy at t=150: %.3f\n", m.Accuracy(150))
	// Output:
	// expected neighbors: 156
	// accuracy at t=30:  1.00
	// accuracy at t=150: 0.002
}

// ExampleCommonNeighborRule shows the topology-only rule that Theorems 1–2
// prove attackable.
func ExampleCommonNeighborRule() {
	g := snd.NewGraph()
	for _, pair := range [][2]snd.NodeID{{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}} {
		g.AddMutual(pair[0], pair[1])
	}
	rule := snd.CommonNeighborRule{Threshold: 1}
	fmt.Println("1 validates 2:", rule.Validate(1, 2, g))
	fmt.Println("minimum deployment:", rule.MinimumDeploymentSize())
	// Output:
	// 1 validates 2: true
	// minimum deployment: 4
}
